//! rdx-sim — deterministic simulation of the workspace's concurrent
//! paths.
//!
//! The pipelined decode-ahead reader, the batch dispatch pool, and the
//! rdx-server session loop all have thread/channel/failure
//! interleavings that ordinary unit tests only sample incidentally:
//! whatever schedule the OS happened to produce is the one that got
//! tested. This crate replaces the OS with a **seeded, wall-clock-free
//! virtual scheduler**: every concurrent component is driven one
//! explicit step at a time on a single thread, with each scheduling
//! decision drawn from a [`Picker`] — a seeded RNG for randomized
//! sweeps ([`SeededPicker`]), a recorded choice list for exhaustive
//! DFS over all schedules of a small scenario
//! ([`explore_exhaustive`]). Same seed → same schedule → same outcome,
//! so every failure is replayable from its seed alone.
//!
//! The components are not reimplemented for simulation; the production
//! types expose step hooks the simulator drives directly:
//!
//! * [`rdx_trace::DecoderTask`] is the decode loop as a step machine,
//!   and [`rdx_trace::PipelinedReader::with_virtual_link`] runs the
//!   *real* consumer logic (recycling, stall handling, parked
//!   verdicts, dead-worker reaping) over the simulator's virtual
//!   queues ([`pipeline::SimLink`]).
//! * [`rdx_core::batch::dispatch`] is the claim/collect core of
//!   `profile_batch`, driven here by virtual workers
//!   ([`batch::run_batch`]).
//! * [`rdx_server::SessionStepper`] is the session state machine one
//!   command at a time ([`session`]).
//!
//! On top of the scheduler sits a **fault injector** ([`fault`]):
//! truncated and overlong varints mid-chunk, decoder death at a chosen
//! step, command streams that snapshot before a header or keep talking
//! after a failure. Each scenario asserts the invariants that must
//! survive any schedule — decoded-prefix delivery before a parked
//! typed error, panic propagation in task order, typed `Internal`
//! (never `Truncated`) for infrastructure death, and bit-identical
//! [`REGISTRY_GOLDEN_DIGEST`] when faults are absent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod fault;
pub mod golden;
pub mod pipeline;
pub mod rng;
pub mod sched;
pub mod session;

use std::fmt;

pub use rng::SplitMix64;
pub use sched::{explore_exhaustive, shared, Picker, RecordingPicker, SeededPicker, SharedPicker};

/// The workspace's golden registry digest: FNV-1a over every suite
/// workload's profile at the canonical parameters. Must match `GOLDEN`
/// in rdx-core's `metrics_determinism.rs` / `fastpath_equivalence.rs` /
/// `ingest_golden.rs` — the virtual pipeline is a fourth execution
/// shape pinning the same constant.
pub const REGISTRY_GOLDEN_DIGEST: u64 = 0x17ea_4869_2cad_4966;

/// An invariant the simulator caught being violated: which invariant,
/// under which seed (for replay), and what was observed.
#[derive(Debug)]
pub struct Violation {
    /// Short name of the violated invariant.
    pub invariant: &'static str,
    /// The seed whose schedule produced the violation (replay with
    /// `rdx sim --seed`), if the scenario was seed-driven.
    pub seed: Option<u64>,
    /// What was observed instead of the invariant holding.
    pub detail: String,
}

impl Violation {
    /// A violation from a seeded schedule.
    #[must_use]
    pub fn seeded(invariant: &'static str, seed: u64, detail: String) -> Self {
        Violation {
            invariant,
            seed: Some(seed),
            detail,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invariant `{}` violated", self.invariant)?;
        if let Some(seed) = self.seed {
            write!(f, " (replay: --seed {seed})")?;
        }
        write!(f, ": {}", self.detail)
    }
}

impl std::error::Error for Violation {}

/// Which fault classes a sim run injects. Fault-free invariants
/// (oracle equivalence, the golden digest) always run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSet {
    /// Trace bytes cut mid-record (`TraceError::Truncated`).
    pub truncate: bool,
    /// An overlong varint spliced into the record stream
    /// (`TraceError::Malformed`).
    pub overlong: bool,
    /// Decoder death at a schedule-chosen step
    /// (`TraceError::Internal`).
    pub worker_death: bool,
    /// Batch tasks that panic, at schedule-chosen claim positions.
    pub batch_panic: bool,
    /// Session command streams that misbehave: snapshots before the
    /// header, commands after failure or close.
    pub session_disorder: bool,
}

impl FaultSet {
    /// Every fault class enabled — the default.
    #[must_use]
    pub fn all() -> Self {
        FaultSet {
            truncate: true,
            overlong: true,
            worker_death: true,
            batch_panic: true,
            session_disorder: true,
        }
    }

    /// No fault injection: only the fault-free invariants.
    #[must_use]
    pub fn none() -> Self {
        FaultSet {
            truncate: false,
            overlong: false,
            worker_death: false,
            batch_panic: false,
            session_disorder: false,
        }
    }

    /// Parses a `--faults` list: `all`, `none`, or a comma-separated
    /// subset of `truncate`, `overlong`, `worker-death`, `batch-panic`,
    /// `session-disorder`.
    ///
    /// # Errors
    ///
    /// A message naming the unknown fault class.
    pub fn parse(list: &str) -> Result<FaultSet, String> {
        match list {
            "all" => return Ok(FaultSet::all()),
            "none" => return Ok(FaultSet::none()),
            _ => {}
        }
        let mut set = FaultSet::none();
        for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match name {
                "truncate" => set.truncate = true,
                "overlong" => set.overlong = true,
                "worker-death" => set.worker_death = true,
                "batch-panic" => set.batch_panic = true,
                "session-disorder" => set.session_disorder = true,
                other => {
                    return Err(format!(
                        "unknown fault class `{other}` (expected all, none, truncate, \
                         overlong, worker-death, batch-panic, session-disorder)"
                    ))
                }
            }
        }
        Ok(set)
    }
}

impl Default for FaultSet {
    fn default() -> Self {
        FaultSet::all()
    }
}

/// Configuration of one [`run_suite`] sweep.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Base seed; schedule `k` of a scenario runs under `seed + k`.
    pub seed: u64,
    /// Randomized schedules per scenario (exhaustive exploration of the
    /// small scenarios runs in addition).
    pub schedules: usize,
    /// Which fault classes to inject.
    pub faults: FaultSet,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            schedules: 64,
            faults: FaultSet::all(),
        }
    }
}

/// What a completed [`run_suite`] sweep covered.
#[derive(Debug)]
pub struct SimReport {
    /// `(scenario name, schedules executed)` per scenario that ran.
    pub scenarios: Vec<(String, usize)>,
    /// The registry digest reproduced through the virtual pipeline
    /// (always equals [`REGISTRY_GOLDEN_DIGEST`] when `Ok`).
    pub golden_digest: u64,
}

impl SimReport {
    /// Total schedules executed across all scenarios.
    #[must_use]
    pub fn total_schedules(&self) -> usize {
        self.scenarios.iter().map(|(_, n)| n).sum()
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, n) in &self.scenarios {
            writeln!(f, "  {name}: {n} schedules ok")?;
        }
        writeln!(
            f,
            "  golden registry digest {:#018x} reproduced",
            self.golden_digest
        )
    }
}

/// Runs the full simulation suite: fault-free oracle equivalence and
/// the golden digest, exhaustive exploration of the small scenarios,
/// and `cfg.schedules` seeded schedules per enabled fault class.
///
/// # Errors
///
/// The first [`Violation`] encountered, carrying the seed to replay it.
pub fn run_suite(cfg: &SimConfig) -> Result<SimReport, Violation> {
    let mut scenarios: Vec<(String, usize)> = Vec::new();

    // Fault-free: the virtual pipeline must match the scalar oracle
    // under every schedule, exhaustively for a tiny scenario...
    let explored = pipeline::explore_clean_exhaustive(4096)?;
    scenarios.push(("pipeline/clean (exhaustive)".into(), explored));
    // ...and by seeded randomization for larger ones.
    for k in 0..cfg.schedules {
        let seed = cfg.seed.wrapping_add(k as u64);
        pipeline::run_clean_seeded(seed)?;
    }
    scenarios.push(("pipeline/clean (seeded)".into(), cfg.schedules));

    if cfg.faults.truncate {
        for k in 0..cfg.schedules {
            let seed = cfg.seed.wrapping_add(k as u64);
            pipeline::run_faulted_seeded(seed, fault::InputFault::TruncateTail)?;
        }
        scenarios.push(("pipeline/truncate".into(), cfg.schedules));
    }
    if cfg.faults.overlong {
        for k in 0..cfg.schedules {
            let seed = cfg.seed.wrapping_add(k as u64);
            pipeline::run_faulted_seeded(seed, fault::InputFault::OverlongVarint)?;
        }
        scenarios.push(("pipeline/overlong".into(), cfg.schedules));
    }
    if cfg.faults.worker_death {
        for k in 0..cfg.schedules {
            let seed = cfg.seed.wrapping_add(k as u64);
            pipeline::run_worker_death_seeded(seed)?;
        }
        scenarios.push(("pipeline/worker-death".into(), cfg.schedules));
    }

    // Batch dispatch: ordered results and task-order panic propagation
    // under every schedule.
    let explored = batch::explore_exhaustive_small(4096)?;
    scenarios.push(("batch/dispatch (exhaustive)".into(), explored));
    for k in 0..cfg.schedules {
        let seed = cfg.seed.wrapping_add(k as u64);
        batch::run_seeded(seed, cfg.faults.batch_panic)?;
    }
    scenarios.push(("batch/dispatch (seeded)".into(), cfg.schedules));

    // Server sessions: chunk boundaries anywhere, plus disorderly
    // command streams when enabled.
    for k in 0..cfg.schedules {
        let seed = cfg.seed.wrapping_add(k as u64);
        session::run_clean_seeded(seed)?;
        if cfg.faults.overlong || cfg.faults.truncate {
            session::run_corrupt_seeded(seed)?;
        }
        if cfg.faults.session_disorder {
            session::run_disorder_seeded(seed)?;
        }
    }
    scenarios.push(("session/stepper".into(), cfg.schedules));

    // The expensive capstone: the registry golden digest, reproduced
    // through the virtual (thread-free) pipeline under a seeded
    // schedule.
    let golden_digest = golden::registry_digest_virtual(cfg.seed)?;
    if golden_digest != REGISTRY_GOLDEN_DIGEST {
        return Err(Violation::seeded(
            "golden-digest",
            cfg.seed,
            format!(
                "virtual-pipeline registry digest {golden_digest:#018x} deviates from \
                 {REGISTRY_GOLDEN_DIGEST:#018x}"
            ),
        ));
    }
    scenarios.push(("golden/registry-digest".into(), 1));

    Ok(SimReport {
        scenarios,
        golden_digest,
    })
}
