//! Virtual-pipeline reproduction of the registry golden digest.
//!
//! The repo pins one FNV-1a digest over the reference workload suite's
//! profiles — `metrics_determinism.rs` from in-memory streams,
//! `fastpath_equivalence.rs` through the chunk fast path,
//! `ingest_golden.rs` through the real threaded decode-ahead pipeline.
//! This module is the fourth execution shape: the production
//! [`rdx_trace::PipelinedReader`] over a schedule-driven [`SimLink`]
//! instead of a decoder thread. Fault-free, every schedule must land on
//! the same bits, so `rdx sim` proves end to end that scheduling freedom
//! never leaks into results.

use crate::pipeline::SimLink;
use crate::sched::shared;
use crate::{SeededPicker, Violation};
use rdx_core::{RdxConfig, RdxRunner};
use rdx_histogram::Histogram;
use rdx_trace::{io, KernelChoice, PipelinedReader, Trace, TraceReader};
use rdx_workloads::{suite, Params};

/// FNV-1a over u64 words — the same digest the golden tests use.
struct Digest(u64);

impl Digest {
    fn new() -> Digest {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn push(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn push_histogram(&mut self, h: &Histogram) {
        for b in h.buckets() {
            self.push(b.range.lo);
            self.push(b.range.hi);
            self.push(b.weight.to_bits());
        }
        self.push(h.infinite_weight().to_bits());
    }
}

/// Chunk capacity for the virtual pipeline: odd and small, so chunk
/// borders straddle PMU overflow gaps and armed-watchpoint lifetimes
/// (matching the adversarial capacity the golden ingest test uses).
const CAPACITY: usize = 777;
/// Ring depth for the virtual pipeline.
const DEPTH: usize = 3;

/// Profiles the reference suite through the *virtual* decode-ahead
/// pipeline (production `PipelinedReader`, schedule from `seed`) and
/// digests the registry exactly like the golden tests do.
///
/// # Errors
///
/// [`Violation`] if any workload's virtual decode does not finish
/// cleanly — the digest would be meaningless on a partial profile.
pub fn registry_digest_virtual(seed: u64) -> Result<u64, Violation> {
    registry_digest_virtual_kernel(seed, KernelChoice::Auto)
}

/// [`registry_digest_virtual`] with both hot-loop kernels forced to
/// `kernel` — the virtual decoder's varint kernel *and* the machine's
/// needle-scan kernel. Kernel dispatch must be invisible under every
/// schedule, so `rdx sim` can pin any kernel against the same digest.
///
/// # Errors
///
/// [`Violation`] if any workload's virtual decode does not finish
/// cleanly — the digest would be meaningless on a partial profile.
pub fn registry_digest_virtual_kernel(seed: u64, kernel: KernelChoice) -> Result<u64, Violation> {
    let params = Params::default().with_accesses(60_000).with_elements(800);
    let config = RdxConfig::default()
        .with_period(512)
        .with_seed(7)
        .with_scan_kernel(kernel);
    let runner = RdxRunner::new(config);
    let mut digest = Digest::new();
    for (i, w) in suite().iter().enumerate() {
        let trace = Trace::from_stream(w.name, w.stream(&params));
        let raw = io::to_bytes(&trace);
        let reader = match TraceReader::new(raw).map(|r| r.with_kernel(kernel)) {
            Ok(r) => r,
            Err(e) => {
                return Err(Violation::seeded(
                    "golden-roundtrip",
                    seed,
                    format!("{}: serialized suite trace failed to parse: {e}", w.name),
                ));
            }
        };
        let declared = reader.declared_len();
        // Each workload gets its own schedule stream derived from the
        // run seed, so one `rdx sim` invocation samples distinct
        // interleavings per workload.
        let picker = shared(SeededPicker::new(
            seed ^ (i as u64).wrapping_mul(0x9e37_79b9),
        ));
        let link = SimLink::new(reader, CAPACITY, DEPTH, picker, None);
        let mut piped = PipelinedReader::with_virtual_link(w.name, declared, Box::new(link));
        let p = runner.profile(&mut piped);
        if let Err(e) = piped.finish() {
            return Err(Violation::seeded(
                "golden-clean-finish",
                seed,
                format!("{}: virtual pipeline did not finish cleanly: {e}", w.name),
            ));
        }
        digest.push_histogram(p.rd.as_histogram());
        digest.push_histogram(p.rt.as_histogram());
        digest.push(p.samples);
        digest.push(p.traps);
        digest.push(p.evictions);
        digest.push(p.m_estimate.to_bits());
    }
    Ok(digest.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::REGISTRY_GOLDEN_DIGEST;

    #[test]
    fn virtual_pipeline_reproduces_registry_golden_digest() {
        let got = registry_digest_virtual(0).expect("clean virtual decode");
        assert_eq!(
            got, REGISTRY_GOLDEN_DIGEST,
            "virtual-pipeline registry digest {got:#018x} deviates from the \
             pinned baseline — scheduling freedom must never change results",
        );
    }

    #[test]
    fn every_kernel_reproduces_the_digest_under_a_virtual_schedule() {
        // Scheduling freedom × kernel dispatch: neither may leak into
        // results, alone or combined. Each kernel runs under a distinct
        // schedule seed so the pairing is exercised, not just the kernels.
        for (i, kernel) in [
            KernelChoice::Auto,
            KernelChoice::Scalar,
            KernelChoice::Swar,
            KernelChoice::Simd,
        ]
        .into_iter()
        .enumerate()
        {
            let got = registry_digest_virtual_kernel(0x5eed ^ i as u64, kernel)
                .expect("clean virtual decode");
            assert_eq!(
                got,
                REGISTRY_GOLDEN_DIGEST,
                "kernel '{}' digest {got:#018x} deviates under a virtual \
                 schedule — kernel dispatch must be bit-identical",
                kernel.name(),
            );
        }
    }

    #[test]
    fn digest_is_schedule_independent() {
        let a = registry_digest_virtual(1).expect("clean virtual decode");
        let b = registry_digest_virtual(0xdead_beef).expect("clean virtual decode");
        assert_eq!(a, b, "two different schedules produced different digests");
        assert_eq!(a, REGISTRY_GOLDEN_DIGEST);
    }
}
