//! Virtual scheduling of the batch dispatch pool.
//!
//! Drives the production claim/collect core
//! ([`rdx_core::batch::dispatch`]) with virtual workers: each worker is
//! a two-state machine (claim-and-run, then emit into a bounded result
//! queue) and the schedule picks which runnable actor — a worker or
//! the collector — moves next. The queue bound equals the worker
//! count, exactly like `profile_batch`'s channel after the
//! unbounded→bounded fix, so the sim also demonstrates that bound can
//! never deadlock: every schedule terminates.
//!
//! Invariants across all schedules:
//!
//! * no injected failures → results come back complete and in task
//!   order, regardless of claim interleaving;
//! * injected failures → [`collect_in_order`] re-raises exactly the
//!   **lowest-indexed** failed task's payload (workers stop claiming
//!   after their own failure, so that task is always claimed);
//! * the run always terminates within a step budget (bounded-queue
//!   no-deadlock proof).

use crate::sched::{pick_shared, SharedPicker};
use crate::{explore_exhaustive, SeededPicker, SplitMix64, Violation};
use rdx_core::batch::dispatch::{collect_in_order, Claims, TaskPanic};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The deterministic "profile" a virtual task computes.
fn task_value(i: usize) -> u64 {
    (i as u64).wrapping_mul(31).wrapping_add(7)
}

/// The recognizable payload a virtual panicking task carries.
fn panic_message(i: usize) -> String {
    format!("injected panic in task {i}")
}

/// One virtual worker's state.
enum Worker {
    /// Ready to claim the next task.
    Ready,
    /// Holding a result, blocked until the queue has room.
    Emitting(usize, Result<u64, TaskPanic>),
    /// Out of work (claims exhausted, or stopped after own failure).
    Done,
}

/// Runs one batch scenario under the given schedule: `tasks` tasks on
/// `workers` virtual workers, tasks listed in `panics` failing with a
/// recognizable payload.
///
/// # Errors
///
/// [`Violation`] (without a seed — the caller attaches it) if ordered
/// collection, task-order panic propagation, or termination is
/// violated.
pub fn run_batch(
    tasks: usize,
    workers: usize,
    panics: &[usize],
    picker: &SharedPicker,
) -> Result<(), Violation> {
    let workers = workers.max(1);
    let claims = Claims::new(tasks);
    let cap = workers; // the bounded(jobs) channel of profile_batch
    let mut queue: VecDeque<(usize, Result<u64, TaskPanic>)> = VecDeque::new();
    let mut states: Vec<Worker> = (0..workers).map(|_| Worker::Ready).collect();
    let mut collected: Vec<(usize, Result<u64, TaskPanic>)> = Vec::new();
    let budget = (tasks + 1) * (workers + 1) * 8 + 64;

    let fail = |invariant: &'static str, detail: String| Violation {
        invariant,
        seed: None,
        detail,
    };

    for _step in 0..budget {
        // Runnable actors: index w = worker w, index workers = collector.
        let mut runnable: Vec<usize> = Vec::new();
        for (w, state) in states.iter().enumerate() {
            match state {
                Worker::Ready => runnable.push(w),
                Worker::Emitting(..) if queue.len() < cap => runnable.push(w),
                _ => {}
            }
        }
        if !queue.is_empty() {
            runnable.push(workers);
        }
        if runnable.is_empty() {
            break; // quiescent: everyone Done, queue drained
        }
        let actor = runnable[pick_shared(picker, runnable.len())];
        if actor == workers {
            if let Some(pair) = queue.pop_front() {
                collected.push(pair);
            }
            continue;
        }
        match std::mem::replace(&mut states[actor], Worker::Done) {
            Worker::Ready => match claims.next() {
                Some(i) => {
                    let result = if panics.contains(&i) {
                        Err(Box::new(panic_message(i)) as TaskPanic)
                    } else {
                        Ok(task_value(i))
                    };
                    states[actor] = Worker::Emitting(i, result);
                }
                None => states[actor] = Worker::Done,
            },
            Worker::Emitting(i, result) => {
                if queue.len() < cap {
                    let failed = result.is_err();
                    queue.push_back((i, result));
                    // Stop claiming after own failure, like the real
                    // worker loop.
                    states[actor] = if failed { Worker::Done } else { Worker::Ready };
                } else {
                    states[actor] = Worker::Emitting(i, result); // still blocked
                }
            }
            Worker::Done => {}
        }
    }

    let all_done = states.iter().all(|s| matches!(s, Worker::Done)) && queue.is_empty();
    if !all_done {
        return Err(fail(
            "batch-no-deadlock",
            format!(
                "scenario ({tasks} tasks, {workers} workers, bound {cap}) did not \
                 quiesce within {budget} steps"
            ),
        ));
    }

    let executed_panic = collected
        .iter()
        .filter(|(_, r)| r.is_err())
        .map(|&(i, _)| i)
        .min();
    let outcome = catch_unwind(AssertUnwindSafe(|| collect_in_order(tasks, collected)));
    match (executed_panic, outcome) {
        (None, Ok(values)) => {
            let want: Vec<u64> = (0..tasks).map(task_value).collect();
            if values != want {
                return Err(fail(
                    "batch-ordered-results",
                    format!("results out of order or incomplete: got {values:?}"),
                ));
            }
            // No failures executed at all is only legal when none were
            // injected into claimable range.
            if panics.iter().any(|&p| p < tasks) {
                return Err(fail(
                    "batch-panic-propagation",
                    "an injected failure was never claimed".to_string(),
                ));
            }
        }
        (Some(lowest), Err(payload)) => {
            let got = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            let min_injected = panics.iter().copied().filter(|&p| p < tasks).min();
            if Some(lowest) != min_injected {
                return Err(fail(
                    "batch-panic-propagation",
                    format!(
                        "lowest executed failure was task {lowest}, but the lowest \
                         injected was {min_injected:?} — claims must be a prefix"
                    ),
                ));
            }
            if got != panic_message(lowest) {
                return Err(fail(
                    "batch-panic-propagation",
                    format!("re-raised payload {got:?}, want task {lowest}'s (task-order rule)"),
                ));
            }
        }
        (None, Err(_)) => {
            return Err(fail(
                "batch-panic-propagation",
                "collection re-raised a panic although no executed task failed".to_string(),
            ));
        }
        (Some(lowest), Ok(_)) => {
            return Err(fail(
                "batch-panic-propagation",
                format!("task {lowest} failed but collection returned Ok"),
            ));
        }
    }
    Ok(())
}

/// One seeded batch schedule: geometry (task count, worker count,
/// failure positions) and interleaving both derive from `seed`.
///
/// # Errors
///
/// [`Violation`] carrying `seed` on any invariant failure.
pub fn run_seeded(seed: u64, inject_panics: bool) -> Result<(), Violation> {
    let mut rng = SplitMix64::new(seed ^ 0xba7c_0000_0000_0002);
    let tasks = 2 + rng.below(8);
    let workers = 1 + rng.below(4);
    let mut panics = Vec::new();
    if inject_panics && rng.below(2) == 0 {
        let n = 1 + rng.below(2);
        for _ in 0..n {
            panics.push(rng.below(tasks));
        }
    }
    let picker = crate::shared(SeededPicker::new(seed));
    run_batch(tasks, workers, &panics, &picker).map_err(|mut v| {
        v.seed = Some(seed);
        v
    })
}

/// Exhaustive exploration of a small scenario (3 tasks, 2 workers,
/// task 1 failing): every interleaving must propagate task 1's
/// payload. Returns the number of schedules explored.
///
/// # Errors
///
/// [`Violation`] on the first schedule that misbehaves.
pub fn explore_exhaustive_small(limit: usize) -> Result<usize, Violation> {
    explore_exhaustive(limit, |picker| run_batch(3, 2, &[1], &picker))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_schedules_hold_invariants() {
        for seed in 0..64 {
            run_seeded(seed, true).expect("batch invariants hold");
        }
    }

    #[test]
    fn exhaustive_small_scenario() {
        let n = explore_exhaustive_small(4096).expect("all schedules propagate task 1");
        assert!(n > 1, "expected a real schedule tree, got {n}");
    }

    #[test]
    fn failure_free_schedules_return_ordered_results() {
        let n = explore_exhaustive(2048, |picker| run_batch(3, 2, &[], &picker))
            .expect("ordered results under every schedule");
        assert!(n > 1);
    }
}
