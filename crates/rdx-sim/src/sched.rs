//! Schedule decisions: who runs next, how far, where a fault lands.
//!
//! Every nondeterministic decision a real execution would leave to the
//! OS scheduler is funneled through one interface: [`Picker::pick`],
//! "choose one of `bound` branches". Two implementations cover the two
//! exploration modes the tentpole needs:
//!
//! * [`SeededPicker`] — decisions from a [`SplitMix64`] stream, so a
//!   64-bit seed names an entire schedule.
//! * [`RecordingPicker`] — replays a fixed choice prefix then takes
//!   branch 0, logging every `(choice, bound)`; [`explore_exhaustive`]
//!   uses the log to enumerate *all* schedules of a scenario,
//!   depth-first.
//!
//! Components that run *inside* a driven structure (e.g. a
//! [`rdx_trace::VirtualLink`] owned by the reader under test) receive
//! their picker as a [`SharedPicker`] so the harness keeps a handle to
//! the recorded log.

use crate::rng::SplitMix64;
use crate::Violation;
use std::sync::{Arc, Mutex};

/// One schedule decision: a branch in `0..bound` (`bound ≥ 1`).
pub trait Picker {
    /// Chooses a branch in `0..bound`.
    fn pick(&mut self, bound: usize) -> usize;
}

/// A picker handle shareable between the harness and a component under
/// test (e.g. a virtual link owned by the reader it drives).
pub type SharedPicker = Arc<Mutex<dyn Picker + Send>>;

/// Wraps a picker for sharing.
pub fn shared(picker: impl Picker + Send + 'static) -> SharedPicker {
    Arc::new(Mutex::new(picker))
}

/// Picks one decision from a shared picker; branch 0 if the lock is
/// poisoned (cannot happen single-threaded, and 0 keeps the schedule
/// well-defined rather than panicking inside a component).
pub(crate) fn pick_shared(picker: &SharedPicker, bound: usize) -> usize {
    match picker.lock() {
        Ok(mut p) => p.pick(bound),
        Err(_) => 0,
    }
}

/// Seed-driven schedule: every decision comes from a SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct SeededPicker {
    rng: SplitMix64,
}

impl SeededPicker {
    /// The schedule named by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SeededPicker {
            rng: SplitMix64::new(seed),
        }
    }
}

impl Picker for SeededPicker {
    fn pick(&mut self, bound: usize) -> usize {
        self.rng.below(bound)
    }
}

/// Replays a fixed choice prefix, then takes branch 0, logging every
/// decision point's `(choice, bound)` — the building block of
/// exhaustive DFS over the schedule tree.
#[derive(Debug)]
pub struct RecordingPicker {
    prefix: Vec<usize>,
    /// Every decision made: `(chosen branch, branching degree)`.
    pub log: Vec<(usize, usize)>,
}

impl RecordingPicker {
    /// A picker that replays `prefix` then defaults to branch 0.
    #[must_use]
    pub fn new(prefix: Vec<usize>) -> Self {
        RecordingPicker {
            prefix,
            log: Vec::new(),
        }
    }
}

impl Picker for RecordingPicker {
    fn pick(&mut self, bound: usize) -> usize {
        let depth = self.log.len();
        let choice = match self.prefix.get(depth) {
            Some(&c) => c.min(bound.saturating_sub(1)),
            None => 0,
        };
        self.log.push((choice, bound));
        choice
    }
}

/// Depth-first exhaustive exploration of a scenario's schedule tree.
///
/// `run` executes the scenario once under the given picker; the
/// recorded branching degrees spawn sibling schedules until the tree
/// is exhausted or `limit` schedules have run (the return value says
/// how many ran). Scenario determinism is required: the same choice
/// prefix must reach the same decision points.
///
/// # Errors
///
/// The first [`Violation`] any schedule produces.
pub fn explore_exhaustive(
    limit: usize,
    mut run: impl FnMut(SharedPicker) -> Result<(), Violation>,
) -> Result<usize, Violation> {
    let mut pending: Vec<Vec<usize>> = vec![Vec::new()];
    let mut executed = 0usize;
    while let Some(prefix) = pending.pop() {
        if executed >= limit {
            break;
        }
        let prefix_len = prefix.len();
        let recorder = Arc::new(Mutex::new(RecordingPicker::new(prefix)));
        run(recorder.clone())?;
        executed += 1;
        let log = match recorder.lock() {
            Ok(r) => r.log.clone(),
            Err(_) => Vec::new(),
        };
        // Each decision point at or past the replayed prefix owns its
        // untaken siblings; queue them as new prefixes. Every schedule
        // in the tree is enumerated exactly once.
        for depth in prefix_len..log.len() {
            let (choice, bound) = log[depth];
            for alt in choice + 1..bound {
                let mut sibling: Vec<usize> = log[..depth].iter().map(|&(c, _)| c).collect();
                sibling.push(alt);
                pending.push(sibling);
            }
        }
    }
    Ok(executed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_counts_binary_tree() {
        // Three binary decisions → exactly 8 schedules.
        let mut seen = Vec::new();
        let n = explore_exhaustive(64, |picker| {
            let mut path = Vec::new();
            for _ in 0..3 {
                path.push(pick_shared(&picker, 2));
            }
            seen.push(path);
            Ok(())
        })
        .expect("no violations");
        assert_eq!(n, 8);
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 8, "every schedule distinct");
    }

    #[test]
    fn exhaustive_handles_data_dependent_branching() {
        // The second decision's degree depends on the first: the tree
        // is 1*3 + (branch0: 2) + (branch1: 1) + (branch2: 4) leaves.
        let n = explore_exhaustive(64, |picker| {
            let first = pick_shared(&picker, 3);
            let degree = match first {
                0 => 2,
                1 => 1,
                _ => 4,
            };
            let _ = pick_shared(&picker, degree);
            Ok(())
        })
        .expect("no violations");
        assert_eq!(n, 2 + 1 + 4);
    }

    #[test]
    fn exhaustive_respects_limit() {
        let n = explore_exhaustive(5, |picker| {
            for _ in 0..4 {
                let _ = pick_shared(&picker, 2);
            }
            Ok(())
        })
        .expect("no violations");
        assert_eq!(n, 5);
    }

    #[test]
    fn seeded_picker_is_replayable() {
        let mut a = SeededPicker::new(99);
        let mut b = SeededPicker::new(99);
        for bound in [2, 3, 5, 7, 2, 9] {
            assert_eq!(a.pick(bound), b.pick(bound));
        }
    }
}
