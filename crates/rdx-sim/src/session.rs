//! Virtual scheduling of rdx-server sessions.
//!
//! Drives the production session state machine through
//! [`rdx_server::SessionStepper`]: one command per step on the
//! caller's thread, with the schedule choosing chunk boundaries
//! (including mid-varint and mid-header splits) and where control
//! commands land between them. No sockets, no threads — the same
//! machine the server runs per-session, under schedules a loopback
//! test would only ever sample.
//!
//! Invariants across all schedules:
//!
//! * clean streams: no error reply ever, every `Flushed` echoes the
//!   byte count so far, and `Close` reports `clean = true` with the
//!   full declared record count validated;
//! * corrupt streams: the first error reply is `MalformedTrace`,
//!   arrives with the chunk containing the corruption, and every later
//!   command's reply carries the same sticky failure class;
//! * disorderly streams: snapshots before the header get `NotReady`
//!   (not a crash, not a stale answer), and commands after `Close`
//!   produce nothing.

use crate::fault;
use crate::sched::{pick_shared, SharedPicker};
use crate::{shared, SeededPicker, SplitMix64, Violation};
use bytes::Bytes;
use rdx_server::protocol::ServerMessage;
use rdx_server::{ErrorCode, SessionCmd, SessionEvent, SessionOptions, SessionStepper};
use rdx_trace::{io, Trace};

/// Per-session byte budget for sim sessions — far above any scenario's
/// trace size, so `Overflow` never muddies the invariant under test.
const MAX_BYTES: usize = 1 << 20;

/// A deterministic small trace for session scenarios.
fn session_trace(rng: &mut SplitMix64) -> (Bytes, u64) {
    let len = 20 + rng.below(200) as u64;
    let stride = 8 + rng.below(64) as u64;
    let t = Trace::from_addresses("sess", (0..len).map(|i| (i * stride) % 4096));
    (io::to_bytes(&t), len)
}

/// Splits `bytes` into schedule-chosen chunks (every boundary
/// possible, including size-1 slivers across the header).
fn split_chunks(bytes: &Bytes, picker: &SharedPicker) -> Vec<Bytes> {
    let mut chunks = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        let remaining = bytes.len() - at;
        let take = 1 + pick_shared(picker, remaining);
        chunks.push(bytes.slice(at..at + take));
        at += take;
    }
    chunks
}

/// Feeds one chunk and classifies the replies: `Ok(n)` = n error
/// replies seen (0 normally), with their first code.
fn error_replies(events: &[SessionEvent]) -> Vec<ErrorCode> {
    events
        .iter()
        .filter_map(|e| match e {
            SessionEvent::Reply(ServerMessage::Error { code, .. }) => Some(*code),
            _ => None,
        })
        .collect()
}

/// Clean-stream invariant under one seeded schedule.
///
/// # Errors
///
/// [`Violation`] with the seed on any divergence.
pub fn run_clean_seeded(seed: u64) -> Result<(), Violation> {
    let mut rng = SplitMix64::new(seed ^ 0x5e55_0000_0000_0003);
    let (bytes, declared) = session_trace(&mut rng);
    let picker = shared(SeededPicker::new(seed));
    let mut stepper = SessionStepper::new(1, "sim", SessionOptions::default(), MAX_BYTES);
    let fail = |invariant, detail| Err(Violation::seeded(invariant, seed, detail));

    let mut sent = 0u64;
    for chunk in split_chunks(&bytes, &picker) {
        sent += chunk.len() as u64;
        let events = stepper.step(SessionCmd::Chunk(chunk));
        if !error_replies(&events).is_empty() {
            return fail(
                "session-clean-no-errors",
                format!("error reply on a clean stream after {sent} bytes"),
            );
        }
        // The schedule decides whether a Flush lands here; its ack
        // must echo exactly the bytes sent so far.
        if pick_shared(&picker, 3) == 0 {
            let events = stepper.step(SessionCmd::Flush);
            match events.first() {
                Some(SessionEvent::Reply(ServerMessage::Flushed { received_bytes, .. }))
                    if *received_bytes == sent => {}
                other => {
                    return fail(
                        "session-flush-echo",
                        format!("after {sent} bytes, Flush answered {other:?}"),
                    );
                }
            }
        }
    }
    // All bytes in: the validator must have seen every declared record.
    let events = stepper.step(SessionCmd::Flush);
    match events.first() {
        Some(SessionEvent::Reply(ServerMessage::Flushed { records, .. }))
            if *records == declared => {}
        other => {
            return fail(
                "session-records-complete",
                format!("final Flush reported {other:?}, want {declared} records"),
            );
        }
    }
    let events = stepper.step(SessionCmd::Close);
    let closed_clean = events.iter().any(|e| {
        matches!(
            e,
            SessionEvent::Reply(ServerMessage::SessionClosed { clean: true, .. })
        )
    });
    if !closed_clean || !stepper.is_closed() {
        return fail(
            "session-clean-close",
            format!("Close on a complete clean stream answered {events:?}"),
        );
    }
    Ok(())
}

/// Corrupt-stream invariant under one seeded schedule: an overlong
/// varint spliced into the record stream must be reported as
/// `MalformedTrace` with the chunk that contains it, stick for every
/// later command, and force `clean = false` at close.
///
/// # Errors
///
/// [`Violation`] with the seed on any divergence.
pub fn run_corrupt_seeded(seed: u64) -> Result<(), Violation> {
    let mut rng = SplitMix64::new(seed ^ 0xc0c0_0000_0000_0004);
    let (clean_bytes, _) = session_trace(&mut rng);
    let bytes = fault::overlong_varint(&clean_bytes);
    let picker = shared(SeededPicker::new(seed));
    let mut stepper = SessionStepper::new(1, "sim", SessionOptions::default(), MAX_BYTES);
    let fail = |invariant, detail| Err(Violation::seeded(invariant, seed, detail));

    let mut first_error: Option<ErrorCode> = None;
    for chunk in split_chunks(&bytes, &picker) {
        let events = stepper.step(SessionCmd::Chunk(chunk));
        for code in error_replies(&events) {
            if first_error.is_none() {
                first_error = Some(code);
            }
        }
    }
    if first_error != Some(ErrorCode::MalformedTrace) {
        return fail(
            "session-corrupt-typed-error",
            format!("first error on a corrupt stream was {first_error:?}, want MalformedTrace"),
        );
    }
    if stepper.failure() != Some(ErrorCode::MalformedTrace) {
        return fail(
            "session-corrupt-sticky",
            format!("failure not sticky: {:?}", stepper.failure()),
        );
    }
    // Every post-failure command must answer with the original class.
    for cmd in [SessionCmd::Flush, SessionCmd::SnapshotHistogram] {
        let events = stepper.step(cmd);
        if error_replies(&events) != vec![ErrorCode::MalformedTrace] {
            return fail(
                "session-corrupt-sticky",
                format!("post-failure command answered {events:?}"),
            );
        }
    }
    let events = stepper.step(SessionCmd::Close);
    let closed_dirty = events.iter().any(|e| {
        matches!(
            e,
            SessionEvent::Reply(ServerMessage::SessionClosed { clean: false, .. })
        )
    });
    if !closed_dirty {
        return fail(
            "session-corrupt-close",
            format!("Close after corruption answered {events:?}, want clean=false"),
        );
    }
    Ok(())
}

/// Disorderly-command invariant under one seeded schedule: snapshots
/// before the header, then a normal stream, then commands after close.
///
/// # Errors
///
/// [`Violation`] with the seed on any divergence.
pub fn run_disorder_seeded(seed: u64) -> Result<(), Violation> {
    let mut rng = SplitMix64::new(seed ^ 0xd150_0000_0000_0005);
    let (bytes, _) = session_trace(&mut rng);
    let picker = shared(SeededPicker::new(seed));
    let mut stepper = SessionStepper::new(1, "sim", SessionOptions::default(), MAX_BYTES);
    let fail = |invariant, detail| Err(Violation::seeded(invariant, seed, detail));

    // A histogram snapshot before any bytes: NotReady, not a crash and
    // not a fabricated empty profile.
    let events = stepper.step(SessionCmd::SnapshotHistogram);
    if error_replies(&events) != vec![ErrorCode::NotReady] {
        return fail(
            "session-snapshot-before-header",
            format!("pre-header snapshot answered {events:?}, want NotReady"),
        );
    }
    // NotReady is advisory, not sticky: the stream must still work.
    for chunk in split_chunks(&bytes, &picker) {
        let events = stepper.step(SessionCmd::Chunk(chunk));
        if !error_replies(&events).is_empty() {
            return fail(
                "session-notready-not-sticky",
                "valid chunk rejected after a premature snapshot".to_string(),
            );
        }
    }
    let events = stepper.step(SessionCmd::Close);
    if !stepper.is_closed() {
        return fail(
            "session-close",
            format!("Close did not close the session ({events:?})"),
        );
    }
    // Out-of-order: commands after Close fall into the void, exactly
    // like sends on the real worker's disconnected channel.
    for cmd in [SessionCmd::Flush, SessionCmd::SnapshotMetrics] {
        let events = stepper.step(cmd);
        if !events.is_empty() {
            return fail(
                "session-after-close",
                format!("command after Close produced {events:?}"),
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_schedules_hold() {
        for seed in 0..24 {
            run_clean_seeded(seed).expect("clean session invariants");
        }
    }

    #[test]
    fn corrupt_schedules_hold() {
        for seed in 0..24 {
            run_corrupt_seeded(seed).expect("corrupt session invariants");
        }
    }

    #[test]
    fn disorder_schedules_hold() {
        for seed in 0..24 {
            run_disorder_seeded(seed).expect("disorder session invariants");
        }
    }
}
