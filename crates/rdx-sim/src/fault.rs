//! Input-corruption faults: deterministic byte surgery on valid RDXT
//! streams.
//!
//! The injector never flips random bits — each fault is a precise,
//! schedule-positionable corruption with a known required verdict:
//!
//! * [`truncate_tail`] cuts bytes off the end → the decoder must
//!   deliver the decodable prefix and park `TraceError::Truncated`.
//! * [`overlong_varint`] splices a varint whose continuation bytes
//!   carry significant bits past the 128-bit payload → the decoder
//!   must deliver the prefix and park `TraceError::Malformed`.
//!
//! RDXT layout (see `rdx_trace::io`): magic `RDXT` (4) · version u32 LE
//! (4) · name_len u32 LE (4) · name · count u64 LE (8) · varint
//! records. The helpers below parse that header to patch the declared
//! count coherently, so the fault under test is the *record*
//! corruption, not an accidental header mismatch.

use bytes::Bytes;

/// Offset of the name-length field in the fixed header.
const NAME_LEN_AT: usize = 8;
/// Fixed-width header bytes before the name: magic, version, name_len.
const PRE_NAME: usize = 12;
/// Count field width.
const COUNT_LEN: usize = 8;

/// Which input corruption a pipeline scenario injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputFault {
    /// Cut bytes off the end of the stream (`Truncated`).
    TruncateTail,
    /// Splice an overlong varint after the valid records (`Malformed`).
    OverlongVarint,
}

/// Byte offset of the count field, i.e. end of the name. `None` if the
/// buffer is too short to even hold the fixed header (valid inputs
/// always can).
fn count_at(bytes: &[u8]) -> Option<usize> {
    let name_len = u32::from_le_bytes([
        *bytes.get(NAME_LEN_AT)?,
        *bytes.get(NAME_LEN_AT + 1)?,
        *bytes.get(NAME_LEN_AT + 2)?,
        *bytes.get(NAME_LEN_AT + 3)?,
    ]) as usize;
    let at = PRE_NAME + name_len;
    (bytes.len() >= at + COUNT_LEN).then_some(at)
}

/// Cuts `cut` bytes off the tail (clamped so at least the header
/// survives): mid-record truncation when `cut` lands inside a varint.
#[must_use]
pub fn truncate_tail(bytes: &[u8], cut: usize) -> Bytes {
    let floor = count_at(bytes).map_or(0, |at| at + COUNT_LEN);
    let keep = bytes.len().saturating_sub(cut).max(floor);
    Bytes::from(bytes[..keep].to_vec())
}

/// Appends one record whose varint encoding is overlong (19
/// continuation bytes carry significant bits past the 128-bit
/// payload), bumping the declared count to match — so the stream fails
/// on the *encoding*, not on a count mismatch. Returns the input
/// unchanged if it is too short to carry the fixed header.
#[must_use]
pub fn overlong_varint(bytes: &[u8]) -> Bytes {
    let Some(at) = count_at(bytes) else {
        return Bytes::from(bytes.to_vec());
    };
    let mut out = bytes.to_vec();
    let mut count = [0u8; COUNT_LEN];
    count.copy_from_slice(&out[at..at + COUNT_LEN]);
    let declared = u64::from_le_bytes(count).wrapping_add(1);
    out[at..at + COUNT_LEN].copy_from_slice(&declared.to_le_bytes());
    // 19 × 0xff: by byte 19 the shift is 126 and 7 significant bits no
    // longer fit below bit 128 — both decoders reject this as
    // Malformed before the terminator is even reached.
    out.extend_from_slice(&[0xff; 19]);
    out.push(0x7f);
    Bytes::from(out)
}

/// Applies `fault` to a valid RDXT byte stream. For `TruncateTail` the
/// cut size comes from the schedule (`cut`), so every byte boundary —
/// including mid-varint and mid-header-adjacent ones — gets explored
/// across seeds.
#[must_use]
pub fn apply(fault: InputFault, bytes: &[u8], cut: usize) -> Bytes {
    match fault {
        InputFault::TruncateTail => truncate_tail(bytes, cut),
        InputFault::OverlongVarint => overlong_varint(bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_trace::{io, AccessStream, Trace, TraceError, TraceReader};

    fn sample() -> Bytes {
        io::to_bytes(&Trace::from_addresses("fault", (0..100u64).map(|i| i * 64)))
    }

    #[test]
    fn truncate_yields_truncated_error() {
        let raw = sample();
        for cut in [1, 5, 17] {
            let hurt = truncate_tail(&raw, cut);
            assert_eq!(hurt.len(), raw.len() - cut);
            let mut r = TraceReader::new(hurt).expect("header intact");
            while r.next_access().is_some() {}
            assert!(matches!(r.finish(), Err(TraceError::Truncated)));
        }
    }

    #[test]
    fn truncate_never_cuts_into_header() {
        let raw = sample();
        let hurt = truncate_tail(&raw, raw.len());
        assert!(TraceReader::new(hurt).is_ok(), "header must survive");
    }

    #[test]
    fn overlong_yields_malformed_error() {
        let raw = sample();
        let hurt = overlong_varint(&raw);
        let mut r = TraceReader::new(hurt).expect("header intact");
        let mut prefix = 0u64;
        while r.next_access().is_some() {
            prefix += 1;
        }
        assert_eq!(prefix, 100, "valid records still decode");
        assert!(matches!(r.finish(), Err(TraceError::Malformed)));
    }
}
