//! Seeded PRNG for schedule decisions.
//!
//! SplitMix64: tiny, fast, and fully determined by its 64-bit seed —
//! exactly what a replayable scheduler needs. Never seeded from OS
//! entropy (the workspace determinism lint enforces that crate-wide).

/// A SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator fully determined by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A value in `0..bound` (`0` when `bound` is zero). The modulo
    /// bias is irrelevant for schedule picking.
    pub fn below(&mut self, bound: usize) -> usize {
        if bound <= 1 {
            return 0;
        }
        (self.next_u64() % bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SplitMix64::new(7);
        for bound in 1..20 {
            for _ in 0..50 {
                assert!(rng.below(bound) < bound);
            }
        }
        assert_eq!(rng.below(0), 0);
    }
}
