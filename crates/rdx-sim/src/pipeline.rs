//! Virtual scheduling of the pipelined decode-ahead reader.
//!
//! [`SimLink`] implements [`rdx_trace::VirtualLink`]: it owns the real
//! [`DecoderTask`] plus virtual ring/data queues with the same bounds
//! as the production channels, and lets the schedule decide — at every
//! point where the real decoder thread and consumer race — whether the
//! decoder runs another turn or the consumer receives. The
//! [`PipelinedReader`] under test is the production type running its
//! production consumer logic; only the thread and the channels are
//! virtual, so every interleaving the OS could produce (and the fault
//! interleavings it practically never produces) is replayable on one
//! thread from a seed.
//!
//! Invariants asserted across all schedules:
//!
//! * fault-free: the delivered access sequence equals the scalar
//!   oracle's, bit for bit, and `finish()` is `Ok`;
//! * corrupt input: the decoded prefix is delivered *before* the
//!   parked typed error, and the error kind matches the oracle's
//!   (`Truncated` / `Malformed`);
//! * decoder death without a verdict: the reader reports
//!   `TraceError::Internal` — never `Truncated`, which would blame the
//!   input for an infrastructure failure (the bug this harness was
//!   built to catch);
//! * the run always terminates: virtual queues are bounded exactly like
//!   the real ones, so a schedule that deadlocked would hang the sim —
//!   completion *is* the no-deadlock proof.

use crate::fault::{self, InputFault};
use crate::rng::SplitMix64;
use crate::sched::{pick_shared, shared, SeededPicker, SharedPicker};
use crate::{explore_exhaustive, Violation};
use bytes::Bytes;
use rdx_trace::{
    io, Access, AccessStream, Chunk, DecodeMsg, DecodeTurn, DecoderTask, PipelinedReader, Trace,
    TraceError, TraceReader, VirtualLink,
};
use std::collections::VecDeque;

/// A virtual decoder link: the production [`DecoderTask`] over
/// schedule-driven bounded queues instead of a thread and channels.
pub struct SimLink {
    task: DecoderTask,
    /// Recycled buffers waiting for the decoder (the ring direction),
    /// preloaded to `depth` like the real constructor.
    ring: VecDeque<Chunk>,
    /// Decoded messages waiting for the consumer (the data direction).
    data: VecDeque<DecodeMsg>,
    /// Data-queue bound: `depth + 1`, matching the real channel (depth
    /// chunks in flight plus the final `End`).
    max_data: usize,
    picker: SharedPicker,
    /// Fault: the decoder dies (stops producing, queued messages
    /// survive — exactly like a real thread death) after this many
    /// turns.
    kill_after_turns: Option<usize>,
    turns: usize,
    dead: bool,
}

impl SimLink {
    /// A link decoding `reader` with the given chunk capacity and ring
    /// depth (clamped to ≥ 2, like the real constructor), scheduled by
    /// `picker`. `kill_after_turns` injects decoder death.
    #[must_use]
    pub fn new(
        reader: TraceReader,
        capacity: usize,
        depth: usize,
        picker: SharedPicker,
        kill_after_turns: Option<usize>,
    ) -> Self {
        let depth = depth.max(2);
        SimLink {
            task: DecoderTask::new(reader, capacity),
            ring: (0..depth).map(|_| Chunk::default()).collect(),
            data: VecDeque::new(),
            max_data: depth + 1,
            picker,
            kill_after_turns,
            turns: 0,
            dead: false,
        }
    }

    /// One decoder turn: consume a ring buffer, queue what it decoded.
    /// The death fault takes effect here — before the turn runs, like
    /// a thread dying between loop iterations.
    fn run_turn(&mut self) {
        if self.kill_after_turns.is_some_and(|k| self.turns >= k) {
            self.dead = true;
            return;
        }
        self.turns += 1;
        let Some(buf) = self.ring.pop_front() else {
            return;
        };
        match self.task.step(buf) {
            DecodeTurn::More(chunk) => self.data.push_back(DecodeMsg::Chunk(chunk)),
            DecodeTurn::Done { prefix, verdict } => {
                if let Some(chunk) = prefix {
                    self.data.push_back(DecodeMsg::Chunk(chunk));
                }
                self.data.push_back(DecodeMsg::End(verdict));
            }
        }
    }
}

impl VirtualLink for SimLink {
    fn recycle(&mut self, chunk: Chunk) {
        if self.dead {
            return; // sends to a dead decoder vanish
        }
        self.ring.push_back(chunk);
    }

    fn pull(&mut self) -> Option<DecodeMsg> {
        loop {
            let can_decode = !self.dead
                && !self.task.is_done()
                && !self.ring.is_empty()
                && self.data.len() < self.max_data;
            let can_deliver = !self.data.is_empty();
            match (can_decode, can_deliver) {
                // The race the real threads run: does the decoder get
                // ahead, or does the consumer receive first? The
                // schedule decides.
                (true, true) => {
                    if pick_shared(&self.picker, 2) == 0 {
                        self.run_turn();
                    } else {
                        return self.data.pop_front();
                    }
                }
                // Consumer blocked on an empty data channel (the
                // `decode.stalls` path): the decoder must run.
                (true, false) => self.run_turn(),
                // Decoder blocked (ring empty or data full — the
                // backpressure bound): the consumer receives.
                (false, true) => return self.data.pop_front(),
                // Nothing can move: the decoder is done (End already
                // delivered) or dead — a dead channel, reaped by the
                // production consumer logic.
                (false, false) => return None,
            }
        }
    }
}

/// Coarse error classification for oracle comparison ([`TraceError`]
/// carries non-comparable payloads like `io::Error`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrKind {
    /// `TraceError::Truncated`
    Truncated,
    /// `TraceError::Malformed`
    Malformed,
    /// `TraceError::TrailingData`
    TrailingData,
    /// `TraceError::Internal`
    Internal,
    /// Anything else.
    Other,
}

/// Classifies a [`TraceError`].
#[must_use]
pub fn kind(e: &TraceError) -> ErrKind {
    match e {
        TraceError::Truncated => ErrKind::Truncated,
        TraceError::Malformed => ErrKind::Malformed,
        TraceError::TrailingData(_) => ErrKind::TrailingData,
        TraceError::Internal(_) => ErrKind::Internal,
        _ => ErrKind::Other,
    }
}

/// What a pipeline run (virtual or oracle) produced.
#[derive(Debug, PartialEq)]
pub struct Outcome {
    /// Every access delivered, in order.
    pub delivered: Vec<Access>,
    /// The parked error kind, if the stream ended on one.
    pub error: Option<ErrKind>,
    /// `finish()`'s verdict, classified.
    pub finish: Result<(), ErrKind>,
}

/// The scalar oracle: the same bytes through a plain [`TraceReader`],
/// one access at a time, no pipeline.
#[must_use]
pub fn oracle(bytes: &Bytes) -> Outcome {
    let Ok(mut reader) = TraceReader::new(bytes.clone()) else {
        return Outcome {
            delivered: Vec::new(),
            error: Some(ErrKind::Other),
            finish: Err(ErrKind::Other),
        };
    };
    let mut delivered = Vec::new();
    while let Some(a) = reader.next_access() {
        delivered.push(a);
    }
    let error = reader.error().map(kind);
    let finish = reader.finish().map_err(|e| kind(&e));
    Outcome {
        delivered,
        error,
        finish,
    }
}

/// Runs the production [`PipelinedReader`] over a [`SimLink`] and
/// reports what it delivered.
#[must_use]
pub fn run_virtual(
    bytes: &Bytes,
    capacity: usize,
    depth: usize,
    picker: SharedPicker,
    kill_after_turns: Option<usize>,
) -> Outcome {
    let Ok(reader) = TraceReader::new(bytes.clone()) else {
        return Outcome {
            delivered: Vec::new(),
            error: Some(ErrKind::Other),
            finish: Err(ErrKind::Other),
        };
    };
    let declared = reader.declared_len();
    let link = SimLink::new(reader, capacity, depth, picker, kill_after_turns);
    let mut piped = PipelinedReader::with_virtual_link("sim", declared, Box::new(link));
    let mut delivered = Vec::new();
    while let Some(a) = piped.next_access() {
        delivered.push(a);
    }
    let error = piped.error().map(kind);
    let finish = piped.finish().map_err(|e| kind(&e));
    Outcome {
        delivered,
        error,
        finish,
    }
}

/// A synthetic trace whose shape is fully determined by `rng`.
fn synthetic_trace(rng: &mut SplitMix64, min_len: usize, max_len: usize) -> Bytes {
    let len = min_len + rng.below(max_len.saturating_sub(min_len).max(1));
    let stride = 8 + rng.below(120) as u64;
    let span = 16 + rng.below(2048) as u64;
    let t = Trace::from_addresses(
        "sim",
        (0..len as u64).map(|i| (i.wrapping_mul(stride)) % (span * stride)),
    );
    io::to_bytes(&t)
}

/// Scenario geometry derived from a seed (distinct stream from the
/// schedule picker so geometry and schedule vary independently).
fn geometry(seed: u64) -> (SplitMix64, usize, usize) {
    let mut rng = SplitMix64::new(seed ^ 0x9e00_5eed_0000_0001);
    let capacity = 1 + rng.below(63);
    let depth = 2 + rng.below(3);
    (rng, capacity, depth)
}

/// Fault-free invariant under one seeded schedule: the virtual
/// pipeline equals the scalar oracle exactly.
///
/// # Errors
///
/// [`Violation`] with the seed on any divergence.
pub fn run_clean_seeded(seed: u64) -> Result<(), Violation> {
    let (mut rng, capacity, depth) = geometry(seed);
    let bytes = synthetic_trace(&mut rng, 50, 1200);
    let want = oracle(&bytes);
    let got = run_virtual(
        &bytes,
        capacity,
        depth,
        shared(SeededPicker::new(seed)),
        None,
    );
    if got != want {
        return Err(Violation::seeded(
            "pipeline-clean-oracle",
            seed,
            format!(
                "virtual pipeline diverged from scalar oracle: got {} accesses \
                 (error {:?}, finish {:?}), want {} (error {:?}, finish {:?})",
                got.delivered.len(),
                got.error,
                got.finish,
                want.delivered.len(),
                want.error,
                want.finish,
            ),
        ));
    }
    Ok(())
}

/// Corrupt-input invariant under one seeded schedule: the decoded
/// prefix is delivered, then the same typed error the oracle parks.
///
/// # Errors
///
/// [`Violation`] with the seed on any divergence.
pub fn run_faulted_seeded(seed: u64, input_fault: InputFault) -> Result<(), Violation> {
    let (mut rng, capacity, depth) = geometry(seed);
    let clean = synthetic_trace(&mut rng, 50, 1200);
    let cut = 1 + rng.below(clean.len().saturating_sub(21).max(1));
    let bytes = fault::apply(input_fault, &clean, cut);
    let want = oracle(&bytes);
    let expect_kind = match input_fault {
        InputFault::TruncateTail => ErrKind::Truncated,
        InputFault::OverlongVarint => ErrKind::Malformed,
    };
    if want.error != Some(expect_kind) {
        return Err(Violation::seeded(
            "pipeline-fault-oracle",
            seed,
            format!(
                "oracle parked {:?} for injected {input_fault:?} (expected {expect_kind:?})",
                want.error
            ),
        ));
    }
    let got = run_virtual(
        &bytes,
        capacity,
        depth,
        shared(SeededPicker::new(seed)),
        None,
    );
    if got != want {
        return Err(Violation::seeded(
            "pipeline-prefix-then-error",
            seed,
            format!(
                "under {input_fault:?}: virtual delivered {} accesses with error {:?} \
                 (finish {:?}); oracle delivered {} with error {:?} (finish {:?})",
                got.delivered.len(),
                got.error,
                got.finish,
                want.delivered.len(),
                want.error,
                want.finish,
            ),
        ));
    }
    Ok(())
}

/// Decoder-death invariant under one seeded schedule: a decoder that
/// dies without a verdict yields `TraceError::Internal` (never
/// `Truncated` — the input is valid) after delivering a prefix of the
/// oracle sequence. A death scheduled after the verdict was already
/// queued is indistinguishable from a clean run, which is also legal.
///
/// # Errors
///
/// [`Violation`] with the seed on any divergence.
pub fn run_worker_death_seeded(seed: u64) -> Result<(), Violation> {
    let (mut rng, capacity, depth) = geometry(seed);
    let bytes = synthetic_trace(&mut rng, 50, 1200);
    let want = oracle(&bytes);
    // Enough turns to sometimes die mid-stream and sometimes not.
    let turns_needed = want.delivered.len() / capacity.max(1) + 2;
    let kill_after = rng.below(turns_needed.max(1));
    let got = run_virtual(
        &bytes,
        capacity,
        depth,
        shared(SeededPicker::new(seed)),
        Some(kill_after),
    );
    match got.finish {
        Ok(()) => {
            // Death landed after the verdict: must look exactly clean.
            if got != want {
                return Err(Violation::seeded(
                    "pipeline-death-after-verdict",
                    seed,
                    format!(
                        "run finished Ok but diverged from oracle: {} vs {} accesses",
                        got.delivered.len(),
                        want.delivered.len()
                    ),
                ));
            }
        }
        Err(kind) => {
            if kind != ErrKind::Internal {
                return Err(Violation::seeded(
                    "pipeline-death-is-internal",
                    seed,
                    format!(
                        "decoder death after {kill_after} turns was reported as {kind:?} — \
                         infrastructure failure must be Internal, never blamed on the input"
                    ),
                ));
            }
            if got.delivered.as_slice()
                != &want.delivered[..got.delivered.len().min(want.delivered.len())]
                || got.delivered.len() > want.delivered.len()
            {
                return Err(Violation::seeded(
                    "pipeline-death-prefix",
                    seed,
                    format!(
                        "delivered sequence after decoder death is not an oracle prefix \
                         ({} delivered, oracle {})",
                        got.delivered.len(),
                        want.delivered.len()
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// Exhaustive fault-free exploration of a tiny scenario: every
/// schedule of a 6-access trace through single-access chunks and a
/// depth-2 ring must match the oracle (capacity 1 maximizes decoder
/// turns, so every decoder/consumer race point is in the tree).
/// Returns the number of schedules explored.
///
/// # Errors
///
/// [`Violation`] on the first schedule that diverges.
pub fn explore_clean_exhaustive(limit: usize) -> Result<usize, Violation> {
    let t = Trace::from_addresses("tiny", [0u64, 64, 128, 0, 64, 192]);
    let bytes = io::to_bytes(&t);
    let want = oracle(&bytes);
    explore_exhaustive(limit, |picker| {
        let got = run_virtual(&bytes, 1, 2, picker, None);
        if got != want {
            return Err(Violation {
                invariant: "pipeline-clean-exhaustive",
                seed: None,
                detail: format!(
                    "a schedule diverged from the oracle: {} vs {} accesses",
                    got.delivered.len(),
                    want.delivered.len()
                ),
            });
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_seeds_match_oracle() {
        for seed in 0..32 {
            run_clean_seeded(seed).expect("clean schedule matches oracle");
        }
    }

    #[test]
    fn same_seed_same_outcome() {
        let (mut rng, capacity, depth) = geometry(7);
        let bytes = synthetic_trace(&mut rng, 50, 400);
        let a = run_virtual(
            &bytes,
            capacity,
            depth,
            shared(SeededPicker::new(7)),
            Some(3),
        );
        let b = run_virtual(
            &bytes,
            capacity,
            depth,
            shared(SeededPicker::new(7)),
            Some(3),
        );
        assert_eq!(a, b, "identical seed must replay identically");
    }

    #[test]
    fn exhaustive_tiny_scenario_has_multiple_schedules() {
        let n = explore_clean_exhaustive(4096).expect("all schedules clean");
        assert!(n > 1, "expected a real schedule tree, got {n}");
    }

    #[test]
    fn worker_death_reports_internal() {
        // At least one seed in this range must hit a mid-stream death;
        // the invariant checks happen inside the runner.
        for seed in 0..64 {
            run_worker_death_seeded(seed).expect("death handled as Internal");
        }
    }
}
