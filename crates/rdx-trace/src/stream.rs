//! Pull-based access streams.

use crate::event::Access;

/// A pull-based stream of memory accesses.
///
/// This is the interface every trace producer (workload generators, trace
/// files, replayers) implements and every consumer (the simulated machine,
/// ground-truth measurement, baselines) drives. It is deliberately not
/// `Iterator`: streams are commonly trait objects threaded through the
/// machine model, and the narrower contract (no `size_hint`, no adapter zoo)
/// keeps implementations simple. Use [`AccessStream::by_ref`]-style mutable
/// borrows to compose, and [`iter`](AccessStream::iter) to bridge into
/// iterator land when convenient.
pub trait AccessStream {
    /// Produces the next access, or `None` when the workload has finished.
    fn next_access(&mut self) -> Option<Access>;

    /// A lower/upper bound on remaining accesses, if cheaply known.
    ///
    /// Used only for progress reporting and preallocation; `None` means
    /// unknown.
    fn remaining_hint(&self) -> Option<u64> {
        None
    }

    /// Caps the stream at `n` accesses.
    fn take(self, n: u64) -> Take<Self>
    where
        Self: Sized,
    {
        Take {
            inner: self,
            left: n,
        }
    }

    /// Bridges this stream into a standard [`Iterator`].
    fn iter(&mut self) -> Iter<'_, Self>
    where
        Self: Sized,
    {
        Iter { stream: self }
    }

    /// Drains the stream, counting accesses. Useful in tests.
    fn count_remaining(&mut self) -> u64 {
        let mut n = 0;
        while self.next_access().is_some() {
            n += 1;
        }
        n
    }
}

impl<S: AccessStream + ?Sized> AccessStream for &mut S {
    fn next_access(&mut self) -> Option<Access> {
        (**self).next_access()
    }

    fn remaining_hint(&self) -> Option<u64> {
        (**self).remaining_hint()
    }
}

impl<S: AccessStream + ?Sized> AccessStream for Box<S> {
    fn next_access(&mut self) -> Option<Access> {
        (**self).next_access()
    }

    fn remaining_hint(&self) -> Option<u64> {
        (**self).remaining_hint()
    }
}

/// Stream adapter limiting the number of accesses; created by
/// [`AccessStream::take`].
#[derive(Debug, Clone)]
pub struct Take<S> {
    inner: S,
    left: u64,
}

impl<S: AccessStream> AccessStream for Take<S> {
    fn next_access(&mut self) -> Option<Access> {
        if self.left == 0 {
            return None;
        }
        let a = self.inner.next_access()?;
        self.left -= 1;
        Some(a)
    }

    fn remaining_hint(&self) -> Option<u64> {
        match self.inner.remaining_hint() {
            Some(r) => Some(r.min(self.left)),
            None => Some(self.left),
        }
    }
}

/// Iterator bridge over a borrowed stream; created by
/// [`AccessStream::iter`].
#[derive(Debug)]
pub struct Iter<'a, S> {
    stream: &'a mut S,
}

impl<S: AccessStream> Iterator for Iter<'_, S> {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        self.stream.next_access()
    }
}

/// An [`AccessStream`] produced by a closure; handy in tests and examples.
///
/// The closure is called once per access and returns `None` to finish.
pub struct FnStream<F>(F);

impl<F: FnMut() -> Option<Access>> FnStream<F> {
    /// Wraps a closure as a stream.
    pub fn new(f: F) -> Self {
        FnStream(f)
    }
}

impl<F: FnMut() -> Option<Access>> AccessStream for FnStream<F> {
    fn next_access(&mut self) -> Option<Access> {
        (self.0)()
    }
}

impl<F> std::fmt::Debug for FnStream<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnStream(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Access;

    fn counting_stream(n: u64) -> impl AccessStream {
        let mut i = 0;
        FnStream::new(move || {
            if i < n {
                i += 1;
                Some(Access::load(i * 64))
            } else {
                None
            }
        })
    }

    #[test]
    fn fn_stream_produces() {
        let mut s = counting_stream(3);
        assert_eq!(s.next_access().unwrap().addr.raw(), 64);
        assert_eq!(s.next_access().unwrap().addr.raw(), 128);
        assert_eq!(s.next_access().unwrap().addr.raw(), 192);
        assert!(s.next_access().is_none());
        // streams are fused by construction here
        assert!(s.next_access().is_none());
    }

    #[test]
    fn take_caps_stream() {
        let mut s = counting_stream(100).take(5);
        assert_eq!(s.remaining_hint(), Some(5));
        assert_eq!(s.count_remaining(), 5);
        assert_eq!(s.remaining_hint(), Some(0));
        assert!(s.next_access().is_none());
    }

    #[test]
    fn take_shorter_stream() {
        let mut s = counting_stream(2).take(10);
        assert_eq!(s.count_remaining(), 2);
    }

    #[test]
    fn iter_bridge() {
        let mut s = counting_stream(4);
        let addrs: Vec<u64> = s.iter().map(|a| a.addr.raw()).collect();
        assert_eq!(addrs, vec![64, 128, 192, 256]);
    }

    #[test]
    fn stream_through_mut_ref_and_box() {
        let mut s = counting_stream(3);
        {
            // &mut S forwards the trait implementation
            let r: &mut dyn AccessStream = &mut s;
            assert!(r.next_access().is_some());
        }
        let mut b: Box<dyn AccessStream> = Box::new(s);
        assert_eq!(b.count_remaining(), 2);
    }
}
