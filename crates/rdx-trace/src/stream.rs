//! Pull-based access streams.

use crate::chunk::Chunked;
use crate::event::Access;

/// A pull-based stream of memory accesses.
///
/// This is the interface every trace producer (workload generators, trace
/// files, replayers) implements and every consumer (the simulated machine,
/// ground-truth measurement, baselines) drives. It is deliberately not
/// `Iterator`: streams are commonly trait objects threaded through the
/// machine model, and the narrower contract (no `size_hint`, no adapter zoo)
/// keeps implementations simple. Use [`AccessStream::by_ref`]-style mutable
/// borrows to compose, and [`iter`](AccessStream::iter) to bridge into
/// iterator land when convenient.
pub trait AccessStream {
    /// Produces the next access, or `None` when the workload has finished.
    fn next_access(&mut self) -> Option<Access>;

    /// A lower/upper bound on remaining accesses, if cheaply known.
    ///
    /// Used only for progress reporting and preallocation; `None` means
    /// unknown.
    fn remaining_hint(&self) -> Option<u64> {
        None
    }

    /// Caps the stream at `n` accesses.
    fn take(self, n: u64) -> Take<Self>
    where
        Self: Sized,
    {
        Take {
            inner: self,
            left: n,
        }
    }

    /// Bridges this stream into a standard [`Iterator`].
    fn iter(&mut self) -> Iter<'_, Self>
    where
        Self: Sized,
    {
        Iter { stream: self }
    }

    /// Drains the stream, counting accesses. Useful in tests.
    fn count_remaining(&mut self) -> u64 {
        let mut n = 0;
        while self.next_access().is_some() {
            n += 1;
        }
        n
    }

    /// Whether [`next_chunk`](AccessStream::next_chunk) can ever return
    /// a slice for this stream.
    ///
    /// A `false` answer lets consumers and adapters skip per-iteration
    /// chunk probes (and lets wrappers pick a pass-through vs. buffering
    /// strategy up front). Capability is a property of the stream's
    /// construction, not its position: implementations must return a
    /// constant for the lifetime of the stream.
    fn chunk_capable(&self) -> bool {
        false
    }

    /// Peeks at the next contiguous run of pending accesses as a slice,
    /// or `None` when the stream is exhausted (or cannot expose slices —
    /// see [`chunk_capable`](AccessStream::chunk_capable)).
    ///
    /// This does **not** advance the stream: after inspecting the slice,
    /// call [`consume_chunk`](AccessStream::consume_chunk) with the
    /// number of leading accesses actually processed. The split mirrors
    /// `BufRead::fill_buf`/`consume` and keeps the trait object-safe
    /// while letting wrappers update their own state outside the
    /// borrow's lifetime. A returned slice is never empty, and repeated
    /// peeks without an intervening consume return the same accesses.
    fn next_chunk(&mut self) -> Option<&[Access]> {
        None
    }

    /// Advances the stream past the first `n` accesses of the slice
    /// last returned by [`next_chunk`](AccessStream::next_chunk).
    ///
    /// Calling this with `n` larger than that slice's length, or without
    /// a preceding `next_chunk`, is a contract violation; implementations
    /// may panic or desynchronize. The default (for streams that never
    /// produce chunks) accepts only `n == 0`.
    fn consume_chunk(&mut self, n: usize) {
        debug_assert_eq!(n, 0, "consume_chunk without a chunk to consume");
    }

    /// Re-exposes this stream through a buffering adapter whose
    /// [`next_chunk`](AccessStream::next_chunk) always works: streaming
    /// sources are batched into slices of at most `capacity` accesses,
    /// while already chunk-capable sources pass straight through.
    fn into_chunks(self, capacity: usize) -> Chunked<Self>
    where
        Self: Sized,
    {
        Chunked::with_capacity(self, capacity)
    }
}

impl<S: AccessStream + ?Sized> AccessStream for &mut S {
    fn next_access(&mut self) -> Option<Access> {
        (**self).next_access()
    }

    fn remaining_hint(&self) -> Option<u64> {
        (**self).remaining_hint()
    }

    fn chunk_capable(&self) -> bool {
        (**self).chunk_capable()
    }

    fn next_chunk(&mut self) -> Option<&[Access]> {
        (**self).next_chunk()
    }

    fn consume_chunk(&mut self, n: usize) {
        (**self).consume_chunk(n);
    }
}

impl<S: AccessStream + ?Sized> AccessStream for Box<S> {
    fn next_access(&mut self) -> Option<Access> {
        (**self).next_access()
    }

    fn remaining_hint(&self) -> Option<u64> {
        (**self).remaining_hint()
    }

    fn chunk_capable(&self) -> bool {
        (**self).chunk_capable()
    }

    fn next_chunk(&mut self) -> Option<&[Access]> {
        (**self).next_chunk()
    }

    fn consume_chunk(&mut self, n: usize) {
        (**self).consume_chunk(n);
    }
}

/// Stream adapter limiting the number of accesses; created by
/// [`AccessStream::take`].
#[derive(Debug, Clone)]
pub struct Take<S> {
    inner: S,
    left: u64,
}

impl<S: AccessStream> AccessStream for Take<S> {
    fn next_access(&mut self) -> Option<Access> {
        if self.left == 0 {
            return None;
        }
        let a = self.inner.next_access()?;
        self.left -= 1;
        Some(a)
    }

    fn remaining_hint(&self) -> Option<u64> {
        match self.inner.remaining_hint() {
            Some(r) => Some(r.min(self.left)),
            None => Some(self.left),
        }
    }

    fn chunk_capable(&self) -> bool {
        self.inner.chunk_capable()
    }

    fn next_chunk(&mut self) -> Option<&[Access]> {
        let left = usize::try_from(self.left).unwrap_or(usize::MAX);
        if left == 0 {
            return None;
        }
        let chunk = self.inner.next_chunk()?;
        let visible = chunk.len().min(left);
        Some(&chunk[..visible])
    }

    fn consume_chunk(&mut self, n: usize) {
        self.inner.consume_chunk(n);
        self.left -= n as u64;
    }
}

/// Adapter that hides a stream's chunk capability; created by
/// [`Opaque::new`].
///
/// Exists so benchmarks and equivalence tests can force consumers onto
/// their per-access slow path (or force [`Chunked`] into buffering mode)
/// while replaying the exact same accesses.
#[derive(Debug, Clone)]
pub struct Opaque<S>(S);

impl<S: AccessStream> Opaque<S> {
    /// Wraps `stream`, forwarding accesses but never exposing chunks.
    pub fn new(stream: S) -> Self {
        Opaque(stream)
    }
}

impl<S: AccessStream> AccessStream for Opaque<S> {
    fn next_access(&mut self) -> Option<Access> {
        self.0.next_access()
    }

    fn remaining_hint(&self) -> Option<u64> {
        self.0.remaining_hint()
    }
}

/// Iterator bridge over a borrowed stream; created by
/// [`AccessStream::iter`].
#[derive(Debug)]
pub struct Iter<'a, S> {
    stream: &'a mut S,
}

impl<S: AccessStream> Iterator for Iter<'_, S> {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        self.stream.next_access()
    }
}

/// An [`AccessStream`] produced by a closure; handy in tests and examples.
///
/// The closure is called once per access and returns `None` to finish.
pub struct FnStream<F>(F);

impl<F: FnMut() -> Option<Access>> FnStream<F> {
    /// Wraps a closure as a stream.
    pub fn new(f: F) -> Self {
        FnStream(f)
    }
}

impl<F: FnMut() -> Option<Access>> AccessStream for FnStream<F> {
    fn next_access(&mut self) -> Option<Access> {
        (self.0)()
    }
}

impl<F> std::fmt::Debug for FnStream<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnStream(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Access;

    fn counting_stream(n: u64) -> impl AccessStream {
        let mut i = 0;
        FnStream::new(move || {
            if i < n {
                i += 1;
                Some(Access::load(i * 64))
            } else {
                None
            }
        })
    }

    #[test]
    fn fn_stream_produces() {
        let mut s = counting_stream(3);
        assert_eq!(s.next_access().unwrap().addr.raw(), 64);
        assert_eq!(s.next_access().unwrap().addr.raw(), 128);
        assert_eq!(s.next_access().unwrap().addr.raw(), 192);
        assert!(s.next_access().is_none());
        // streams are fused by construction here
        assert!(s.next_access().is_none());
    }

    #[test]
    fn take_caps_stream() {
        let mut s = counting_stream(100).take(5);
        assert_eq!(s.remaining_hint(), Some(5));
        assert_eq!(s.count_remaining(), 5);
        assert_eq!(s.remaining_hint(), Some(0));
        assert!(s.next_access().is_none());
    }

    #[test]
    fn take_shorter_stream() {
        let mut s = counting_stream(2).take(10);
        assert_eq!(s.count_remaining(), 2);
    }

    #[test]
    fn iter_bridge() {
        let mut s = counting_stream(4);
        let addrs: Vec<u64> = s.iter().map(|a| a.addr.raw()).collect();
        assert_eq!(addrs, vec![64, 128, 192, 256]);
    }

    #[test]
    fn default_streams_are_not_chunk_capable() {
        let mut s = counting_stream(3);
        assert!(!s.chunk_capable());
        assert!(s.next_chunk().is_none());
        s.consume_chunk(0); // n == 0 is always allowed
        assert_eq!(s.count_remaining(), 3);
    }

    #[test]
    fn take_caps_chunks_at_budget() {
        let t = crate::Trace::from_addresses("t", (0..10u64).map(|i| i * 8));
        let mut s = t.stream().take(4);
        assert!(s.chunk_capable());
        let chunk = s.next_chunk().expect("chunk available");
        assert_eq!(chunk.len(), 4, "peek must not exceed the take budget");
        s.consume_chunk(3);
        let chunk = s.next_chunk().expect("one access left");
        assert_eq!(chunk.len(), 1);
        s.consume_chunk(1);
        assert!(s.next_chunk().is_none());
        assert!(s.next_access().is_none());
    }

    #[test]
    fn take_mixes_chunk_and_scalar_consumption() {
        let t = crate::Trace::from_addresses("t", (0..10u64).map(|i| i * 8));
        let mut s = t.stream().take(6);
        assert_eq!(s.next_access().unwrap().addr.raw(), 0);
        let chunk = s.next_chunk().expect("five left");
        assert_eq!(chunk.len(), 5);
        assert_eq!(chunk[0].addr.raw(), 8);
        s.consume_chunk(2);
        assert_eq!(s.next_access().unwrap().addr.raw(), 24);
        assert_eq!(s.count_remaining(), 2);
    }

    #[test]
    fn opaque_hides_chunk_capability() {
        let t = crate::Trace::from_addresses("t", (0..5u64).map(|i| i * 8));
        let mut s = Opaque::new(t.stream());
        assert!(!s.chunk_capable());
        assert!(s.next_chunk().is_none());
        assert_eq!(s.remaining_hint(), Some(5));
        assert_eq!(s.count_remaining(), 5);
    }

    #[test]
    fn chunk_forwarding_through_mut_ref_and_box() {
        let t = crate::Trace::from_addresses("t", (0..8u64).map(|i| i * 8));
        let mut s = t.stream();
        {
            let r: &mut dyn AccessStream = &mut s;
            assert!(r.chunk_capable());
            let len = r.next_chunk().expect("chunk").len();
            assert_eq!(len, 8);
            r.consume_chunk(5);
        }
        let mut b: Box<dyn AccessStream + '_> = Box::new(s);
        assert!(b.chunk_capable());
        assert_eq!(b.next_chunk().expect("tail chunk").len(), 3);
        b.consume_chunk(3);
        assert!(b.next_chunk().is_none());
    }

    #[test]
    fn stream_through_mut_ref_and_box() {
        let mut s = counting_stream(3);
        {
            // &mut S forwards the trait implementation
            let r: &mut dyn AccessStream = &mut s;
            assert!(r.next_access().is_some());
        }
        let mut b: Box<dyn AccessStream> = Box::new(s);
        assert_eq!(b.count_remaining(), 2);
    }
}
