//! Materialized traces.

use crate::event::{Access, AccessKind, Address};
use crate::stream::AccessStream;

/// A materialized memory access trace.
///
/// Accesses are stored packed (address plus a kind bit folded into a `u64`
/// pair) to keep large traces affordable; tests and small experiments use
/// this form, while long-running workloads stream instead (see
/// [`AccessStream`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    name: String,
    accesses: Vec<Access>,
}

impl Trace {
    /// Names are clamped to [`crate::io::MAX_NAME_LEN`] bytes at
    /// construction so serialization can never see a name whose length
    /// overflows the header's `u32` length field.
    fn checked_name(name: impl Into<String>) -> String {
        let name = name.into();
        if name.len() <= crate::io::MAX_NAME_LEN {
            return name;
        }
        crate::io::clamp_name(&name).to_owned()
    }

    /// Creates an empty trace with the given name (clamped to
    /// [`crate::io::MAX_NAME_LEN`] bytes).
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: Self::checked_name(name),
            accesses: Vec::new(),
        }
    }

    /// Builds a trace of loads from raw addresses.
    #[must_use]
    pub fn from_addresses(name: impl Into<String>, addrs: impl IntoIterator<Item = u64>) -> Self {
        Trace {
            name: Self::checked_name(name),
            accesses: addrs.into_iter().map(Access::load).collect(),
        }
    }

    /// Accesses pre-reserved from a stream's `remaining_hint` before the
    /// `Vec` falls back to growth-by-doubling. A corrupt trace header can
    /// declare up to `u64::MAX` records; trusting that hint verbatim
    /// would abort in the allocator, so cap the up-front reservation
    /// (16Mi accesses = 256 MiB) and let honest oversized streams grow
    /// normally from there.
    const MAX_HINT_RESERVE: usize = 1 << 24;

    /// Materializes a stream into a trace.
    #[must_use]
    pub fn from_stream(name: impl Into<String>, mut stream: impl AccessStream) -> Self {
        let mut accesses = Vec::with_capacity(
            stream
                .remaining_hint()
                .map_or(0, |h| usize::try_from(h).unwrap_or(usize::MAX))
                .min(Self::MAX_HINT_RESERVE),
        );
        while let Some(a) = stream.next_access() {
            accesses.push(a);
        }
        Trace {
            name: Self::checked_name(name),
            accesses,
        }
    }

    /// Test-only: bypasses the construction-time name clamp so the
    /// serializer's own oversized-name rejection stays testable.
    #[cfg(test)]
    pub(crate) fn with_unchecked_name(name: String) -> Self {
        Trace {
            name,
            accesses: Vec::new(),
        }
    }

    /// The trace's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of accesses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Returns true if the trace holds no accesses.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Appends an access.
    pub fn push(&mut self, access: Access) {
        self.accesses.push(access);
    }

    /// The accesses as a slice.
    #[must_use]
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }

    /// Iterates over the accesses.
    pub fn iter(&self) -> std::slice::Iter<'_, Access> {
        self.accesses.iter()
    }

    /// Creates a replaying stream borrowing this trace.
    #[must_use]
    pub fn stream(&self) -> TraceStream<'_> {
        TraceStream {
            trace: self,
            pos: 0,
        }
    }

    /// The distinct block numbers touched, at the given address shift
    /// (0 = byte granularity). Mostly used by trace statistics and tests.
    #[must_use]
    pub fn distinct_blocks(&self, shift: u32) -> u64 {
        // Sort + dedup instead of a hash set: deterministic and free of
        // SipHash's per-process seed (rdx-trace is a hot crate).
        let mut blocks: Vec<u64> = self
            .accesses
            .iter()
            .map(|a| a.addr.raw() >> shift)
            .collect();
        blocks.sort_unstable();
        blocks.dedup();
        blocks.len() as u64
    }
}

impl Extend<Access> for Trace {
    fn extend<T: IntoIterator<Item = Access>>(&mut self, iter: T) {
        self.accesses.extend(iter);
    }
}

impl FromIterator<Access> for Trace {
    fn from_iter<T: IntoIterator<Item = Access>>(iter: T) -> Self {
        Trace {
            name: String::new(),
            accesses: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Access;
    type IntoIter = std::slice::Iter<'a, Access>;

    fn into_iter(self) -> Self::IntoIter {
        self.accesses.iter()
    }
}

/// Stream that replays a borrowed [`Trace`]; created by [`Trace::stream`].
#[derive(Debug, Clone)]
pub struct TraceStream<'a> {
    trace: &'a Trace,
    pos: usize,
}

impl AccessStream for TraceStream<'_> {
    fn next_access(&mut self) -> Option<Access> {
        let a = self.trace.accesses.get(self.pos).copied()?;
        self.pos += 1;
        Some(a)
    }

    fn remaining_hint(&self) -> Option<u64> {
        Some((self.trace.accesses.len() - self.pos) as u64)
    }

    fn chunk_capable(&self) -> bool {
        true
    }

    /// Zero-copy: the entire unread remainder of the trace as one slice.
    fn next_chunk(&mut self) -> Option<&[Access]> {
        let rest = &self.trace.accesses[self.pos..];
        if rest.is_empty() {
            None
        } else {
            Some(rest)
        }
    }

    fn consume_chunk(&mut self, n: usize) {
        debug_assert!(n <= self.trace.accesses.len() - self.pos);
        self.pos += n;
    }
}

/// Convenience: build a load/store trace from `(addr, is_store)` pairs.
impl FromIterator<(u64, bool)> for Trace {
    fn from_iter<T: IntoIterator<Item = (u64, bool)>>(iter: T) -> Self {
        Trace {
            name: String::new(),
            accesses: iter
                .into_iter()
                .map(|(addr, is_store)| Access {
                    addr: Address::new(addr),
                    kind: if is_store {
                        AccessKind::Store
                    } else {
                        AccessKind::Load
                    },
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_replay() {
        let t = Trace::from_addresses("t", [1u64, 2, 1]);
        assert_eq!(t.name(), "t");
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        let mut s = t.stream();
        assert_eq!(s.remaining_hint(), Some(3));
        assert_eq!(s.next_access().unwrap().addr.raw(), 1);
        assert_eq!(s.remaining_hint(), Some(2));
        let rest: Vec<u64> = s.iter().map(|a| a.addr.raw()).collect();
        assert_eq!(rest, vec![2, 1]);
    }

    #[test]
    fn from_stream_roundtrip() {
        let t = Trace::from_addresses("src", 0..100u64);
        let t2 = Trace::from_stream("copy", t.stream());
        assert_eq!(t2.len(), 100);
        assert_eq!(t.accesses(), t2.accesses());
    }

    #[test]
    fn collect_from_pairs() {
        let t: Trace = [(0x40u64, false), (0x80, true)].into_iter().collect();
        assert_eq!(t.accesses()[0].kind, AccessKind::Load);
        assert_eq!(t.accesses()[1].kind, AccessKind::Store);
    }

    #[test]
    fn extend_and_push() {
        let mut t = Trace::new("x");
        t.push(Access::load(1u64));
        t.extend([Access::store(2u64), Access::load(3u64)]);
        assert_eq!(t.len(), 3);
        let kinds: Vec<bool> = t.iter().map(|a| a.kind.is_store()).collect();
        assert_eq!(kinds, vec![false, true, false]);
    }

    #[test]
    fn distinct_blocks_by_shift() {
        // 0, 8, 64: 3 distinct bytes, 2 distinct 64B lines (0 and 1)
        let t = Trace::from_addresses("d", [0u64, 8, 64]);
        assert_eq!(t.distinct_blocks(0), 3);
        assert_eq!(t.distinct_blocks(6), 2);
        assert_eq!(t.distinct_blocks(12), 1);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new("e");
        assert!(t.is_empty());
        assert_eq!(t.stream().count_remaining(), 0);
        assert_eq!(t.distinct_blocks(0), 0);
    }

    #[test]
    fn oversized_names_clamped_at_construction() {
        let max = crate::io::MAX_NAME_LEN;
        let long = "n".repeat(max + 100);
        for t in [
            Trace::new(long.clone()),
            Trace::from_addresses(long.clone(), [1u64, 2]),
            Trace::from_stream(long.clone(), Trace::new("x").stream()),
        ] {
            assert_eq!(t.name().len(), max, "clamped to the serializable bound");
        }
        // Clamping lands on a char boundary, never mid-codepoint.
        let unicode = "é".repeat(max); // 2 bytes per char -> 2*max bytes
        let t = Trace::new(unicode);
        assert!(t.name().len() <= max);
        assert!(t.name().chars().all(|c| c == 'é'));
    }
}
