//! Single-pass trace statistics.

use crate::event::Granularity;
use crate::stream::AccessStream;
use std::collections::BTreeSet;

/// Summary statistics of an access stream, computed in one pass.
///
/// Used by the workload-suite table (T1) and as sanity checks in tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStats {
    /// Granularity at which distinct blocks were counted.
    pub granularity: Granularity,
    /// Total number of accesses.
    pub accesses: u64,
    /// Number of stores (the rest are loads).
    pub stores: u64,
    /// Number of distinct blocks touched (the working-set footprint).
    pub distinct_blocks: u64,
    /// Lowest byte address seen (`u64::MAX` when empty).
    pub min_addr: u64,
    /// Highest byte address seen (0 when empty).
    pub max_addr: u64,
}

impl TraceStats {
    /// Computes statistics by draining the given stream.
    #[must_use]
    pub fn measure(mut stream: impl AccessStream, granularity: Granularity) -> TraceStats {
        let mut stats = TraceStats {
            granularity,
            accesses: 0,
            stores: 0,
            distinct_blocks: 0,
            min_addr: u64::MAX,
            max_addr: 0,
        };
        // Ordered set: bounded by the footprint like a hash set, but
        // deterministic (rdx-trace is a hot crate — no SipHash).
        let mut blocks: BTreeSet<u64> = BTreeSet::new();
        while let Some(a) = stream.next_access() {
            stats.accesses += 1;
            if a.kind.is_store() {
                stats.stores += 1;
            }
            let raw = a.addr.raw();
            stats.min_addr = stats.min_addr.min(raw);
            stats.max_addr = stats.max_addr.max(raw);
            blocks.insert(a.addr.block(granularity));
        }
        stats.distinct_blocks = blocks.len() as u64;
        stats
    }

    /// Fraction of accesses that are stores (0 for an empty trace).
    #[must_use]
    pub fn store_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.stores as f64 / self.accesses as f64
        }
    }

    /// Footprint in bytes: distinct blocks × block size.
    #[must_use]
    pub fn footprint_bytes(&self) -> u64 {
        self.distinct_blocks
            .saturating_mul(self.granularity.block_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    #[test]
    fn measures_counts_and_bounds() {
        let t: Trace = [(0u64, false), (64, true), (0, false), (128, true)]
            .into_iter()
            .collect();
        let s = TraceStats::measure(t.stream(), Granularity::CACHE_LINE);
        assert_eq!(s.accesses, 4);
        assert_eq!(s.stores, 2);
        assert_eq!(s.distinct_blocks, 3);
        assert_eq!(s.min_addr, 0);
        assert_eq!(s.max_addr, 128);
        assert_eq!(s.store_ratio(), 0.5);
        assert_eq!(s.footprint_bytes(), 3 * 64);
    }

    #[test]
    fn granularity_changes_distinct_count() {
        let t = Trace::from_addresses("g", [0u64, 8, 16, 64]);
        let byte = TraceStats::measure(t.stream(), Granularity::BYTE);
        let line = TraceStats::measure(t.stream(), Granularity::CACHE_LINE);
        assert_eq!(byte.distinct_blocks, 4);
        assert_eq!(line.distinct_blocks, 2);
    }

    #[test]
    fn empty_stream() {
        let t = Trace::new("e");
        let s = TraceStats::measure(t.stream(), Granularity::CACHE_LINE);
        assert_eq!(s.accesses, 0);
        assert_eq!(s.store_ratio(), 0.0);
        assert_eq!(s.min_addr, u64::MAX);
        assert_eq!(s.max_addr, 0);
        assert_eq!(s.footprint_bytes(), 0);
    }
}
