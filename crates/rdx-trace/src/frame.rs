//! Length-prefixed frame codec for the rdx-server wire protocol.
//!
//! A frame is a `u32` little-endian payload length followed by that many
//! payload bytes. The first payload byte is a message tag by convention,
//! but this layer only moves opaque payloads; message semantics live in
//! `rdx-server`. [`PayloadWriter`] / [`PayloadReader`] provide the field
//! encoding (fixed-width integers, varints via the RDXT varint layer,
//! and length-prefixed byte strings) shared by every message.
//!
//! The codec is defensive in both directions: lengths are bounded by
//! [`MAX_FRAME_LEN`] before any allocation, a length field can never be
//! silently truncated on write, and a payload that ends mid-field or
//! carries an overlong varint is a typed [`FrameError::Malformed`] — not
//! a panic, and not a misleading "truncated input" report.

use crate::io::{get_varint, put_varint};
use crate::TraceError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::io::{self, Read, Write};

/// Upper bound on a frame payload, enforced on both read and write
/// (16 MiB). Bounds the allocation an untrusted peer can force per frame.
pub const MAX_FRAME_LEN: usize = 1 << 24;

/// Errors from the frame codec.
#[derive(Debug)]
pub enum FrameError {
    /// An underlying transport error.
    Io(io::Error),
    /// A frame declared (or a writer was handed) a payload larger than
    /// [`MAX_FRAME_LEN`].
    Oversized(usize),
    /// The transport ended mid-frame: inside the length prefix or before
    /// the declared payload was complete.
    TruncatedFrame,
    /// A complete frame whose payload violates the field grammar: a
    /// field past the payload end, an overlong varint, or invalid UTF-8
    /// where text was required.
    Malformed,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame transport error: {e}"),
            FrameError::Oversized(len) => {
                write!(
                    f,
                    "frame payload is {len} bytes; the limit is {MAX_FRAME_LEN}"
                )
            }
            FrameError::TruncatedFrame => write!(f, "transport ended mid-frame"),
            FrameError::Malformed => write!(f, "frame payload malformed"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::TruncatedFrame
        } else {
            FrameError::Io(e)
        }
    }
}

/// Writes one frame: `u32` LE length prefix, then the payload.
///
/// # Errors
///
/// [`FrameError::Oversized`] if the payload exceeds [`MAX_FRAME_LEN`]
/// (the length field is never silently truncated), or an [`FrameError::Io`]
/// from the transport.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(FrameError::Oversized(payload.len()));
    }
    // Exact: MAX_FRAME_LEN fits in u32, and the bound was just checked.
    #[allow(clippy::cast_possible_truncation)]
    let len = payload.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads one frame payload.
///
/// Returns `Ok(None)` on a clean end-of-stream at a frame boundary.
///
/// # Errors
///
/// [`FrameError::TruncatedFrame`] if the stream ends inside a frame,
/// [`FrameError::Oversized`] if the declared length exceeds
/// [`MAX_FRAME_LEN`] (checked before allocating), or [`FrameError::Io`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Bytes>, FrameError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < len_buf.len() {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::TruncatedFrame),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(Bytes::from(payload)))
}

/// Builds one frame payload field by field.
#[derive(Debug, Default)]
pub struct PayloadWriter {
    buf: BytesMut,
}

impl PayloadWriter {
    /// Starts a payload with its leading message tag.
    #[must_use]
    pub fn new(tag: u8) -> Self {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(tag);
        PayloadWriter { buf }
    }

    /// Appends a byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Appends a varint in the RDXT record encoding.
    pub fn put_varint(&mut self, v: u128) {
        put_varint(&mut self.buf, v);
    }

    /// Appends a length-prefixed byte string (`u32` LE length + bytes).
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversized`] if `bytes` is longer than
    /// [`MAX_FRAME_LEN`] — the length prefix is never cast-truncated.
    pub fn put_bytes(&mut self, bytes: &[u8]) -> Result<(), FrameError> {
        if bytes.len() > MAX_FRAME_LEN {
            return Err(FrameError::Oversized(bytes.len()));
        }
        // Exact: bounded by MAX_FRAME_LEN above.
        #[allow(clippy::cast_possible_truncation)]
        self.buf.put_u32_le(bytes.len() as u32);
        self.buf.put_slice(bytes);
        Ok(())
    }

    /// Appends a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversized`] if the string exceeds [`MAX_FRAME_LEN`].
    pub fn put_str(&mut self, s: &str) -> Result<(), FrameError> {
        self.put_bytes(s.as_bytes())
    }

    /// Finishes the payload.
    #[must_use]
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Decodes one frame payload field by field.
#[derive(Debug)]
pub struct PayloadReader {
    buf: Bytes,
}

impl PayloadReader {
    /// Wraps a complete frame payload.
    #[must_use]
    pub fn new(payload: Bytes) -> Self {
        PayloadReader { buf: payload }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    /// Takes one byte.
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] if the payload is exhausted.
    pub fn take_u8(&mut self) -> Result<u8, FrameError> {
        if self.buf.remaining() < 1 {
            return Err(FrameError::Malformed);
        }
        Ok(self.buf.get_u8())
    }

    /// Takes a `u32`, little-endian.
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] if fewer than 4 bytes remain.
    pub fn take_u32(&mut self) -> Result<u32, FrameError> {
        if self.buf.remaining() < 4 {
            return Err(FrameError::Malformed);
        }
        Ok(self.buf.get_u32_le())
    }

    /// Takes a `u64`, little-endian.
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] if fewer than 8 bytes remain.
    pub fn take_u64(&mut self) -> Result<u64, FrameError> {
        if self.buf.remaining() < 8 {
            return Err(FrameError::Malformed);
        }
        Ok(self.buf.get_u64_le())
    }

    /// Takes a varint in the RDXT record encoding.
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] if the payload ends mid-varint or the
    /// encoding is overlong — inside a complete frame both are grammar
    /// violations, not transport truncation.
    pub fn take_varint(&mut self) -> Result<u128, FrameError> {
        get_varint(&mut self.buf).map_err(|e| match e {
            TraceError::Malformed | TraceError::Truncated => FrameError::Malformed,
            TraceError::Io(io_err) => FrameError::Io(io_err),
            _ => FrameError::Malformed,
        })
    }

    /// Takes a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] if the declared length overruns the
    /// payload (the length is validated before any copy).
    pub fn take_bytes(&mut self) -> Result<Bytes, FrameError> {
        let len = self.take_u32()? as usize;
        if self.buf.remaining() < len {
            return Err(FrameError::Malformed);
        }
        let bytes = self.buf.slice(..len);
        self.buf.advance(len);
        Ok(bytes)
    }

    /// Takes a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] on overrun or invalid UTF-8.
    pub fn take_str(&mut self) -> Result<String, FrameError> {
        let bytes = self.take_bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::Malformed)
    }

    /// Asserts the payload was fully consumed.
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] if undecoded bytes remain — a message
    /// longer than its grammar is as suspect as one shorter.
    pub fn expect_end(&self) -> Result<(), FrameError> {
        if self.buf.has_remaining() {
            return Err(FrameError::Malformed);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip_including_empty() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, &[0xAB; 300]).unwrap();

        let mut r = Cursor::new(wire);
        assert_eq!(read_frame(&mut r).unwrap().unwrap().as_ref(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap().as_ref(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap().as_ref(), [0xAB; 300]);
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF -> None");
        assert!(read_frame(&mut r).unwrap().is_none(), "EOF is sticky");
    }

    #[test]
    fn eof_inside_frame_is_truncation() {
        // Mid length prefix.
        let mut r = Cursor::new(vec![0x05, 0x00]);
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::TruncatedFrame)
        ));
        // Complete prefix, short payload.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        wire.truncate(wire.len() - 2);
        let mut r = Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::TruncatedFrame)
        ));
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        // Declares u32::MAX bytes; must fail on the bound check, not by
        // attempting (and possibly aborting on) a 4 GiB allocation.
        let mut r = Cursor::new(vec![0xFF, 0xFF, 0xFF, 0xFF]);
        match read_frame(&mut r) {
            Err(FrameError::Oversized(len)) => assert_eq!(len, u32::MAX as usize),
            other => panic!("expected Oversized, got {other:?}"),
        }
        let big = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(matches!(
            write_frame(&mut Vec::new(), &big),
            Err(FrameError::Oversized(_))
        ));
    }

    #[test]
    fn payload_field_roundtrip() {
        let mut w = PayloadWriter::new(0x42);
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_varint(u128::MAX);
        w.put_varint(0);
        w.put_bytes(b"chunk-bytes").unwrap();
        w.put_str("séssion").unwrap();
        let payload = w.finish();

        let mut r = PayloadReader::new(payload);
        assert_eq!(r.take_u8().unwrap(), 0x42);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.take_varint().unwrap(), u128::MAX);
        assert_eq!(r.take_varint().unwrap(), 0);
        assert_eq!(r.take_bytes().unwrap().as_ref(), b"chunk-bytes");
        assert_eq!(r.take_str().unwrap(), "séssion");
        r.expect_end().unwrap();
    }

    #[test]
    fn payload_overruns_are_malformed() {
        let mut r = PayloadReader::new(Bytes::from(&[1u8, 2]));
        assert!(matches!(r.take_u32(), Err(FrameError::Malformed)));
        let mut r = PayloadReader::new(Bytes::from(&[1u8, 2, 3]));
        assert!(matches!(r.take_u64(), Err(FrameError::Malformed)));
        // Byte-string length overrunning the payload.
        let mut w = PayloadWriter::new(0);
        w.put_u32(100); // claims 100 bytes follow
        w.put_u8(1);
        let mut r = PayloadReader::new(w.finish());
        r.take_u8().unwrap();
        assert!(matches!(r.take_bytes(), Err(FrameError::Malformed)));
        // Empty payload.
        let mut r = PayloadReader::new(Bytes::default());
        assert!(matches!(r.take_u8(), Err(FrameError::Malformed)));
    }

    #[test]
    fn payload_varint_errors_are_malformed() {
        // Ends mid-varint: continuation byte then nothing.
        let mut r = PayloadReader::new(Bytes::from(&[0x80u8]));
        assert!(matches!(r.take_varint(), Err(FrameError::Malformed)));
        // Overlong: 18 continuation bytes then a terminator with bits
        // that don't fit at shift 126.
        let mut overlong = vec![0x81u8; 18];
        overlong.push(0x7F);
        let mut r = PayloadReader::new(Bytes::from(overlong));
        assert!(matches!(r.take_varint(), Err(FrameError::Malformed)));
    }

    #[test]
    fn trailing_payload_bytes_detected() {
        let mut w = PayloadWriter::new(9);
        w.put_u8(1);
        let mut r = PayloadReader::new(w.finish());
        assert_eq!(r.take_u8().unwrap(), 9);
        assert!(matches!(r.expect_end(), Err(FrameError::Malformed)));
        assert_eq!(r.remaining(), 1);
        assert_eq!(r.take_u8().unwrap(), 1);
        r.expect_end().unwrap();
    }

    #[test]
    fn invalid_utf8_is_malformed() {
        let mut w = PayloadWriter::new(0);
        w.put_bytes(&[0xFF, 0xFE]).unwrap();
        let mut r = PayloadReader::new(w.finish());
        r.take_u8().unwrap();
        assert!(matches!(r.take_str(), Err(FrameError::Malformed)));
    }

    #[test]
    fn error_display_and_source() {
        assert!(FrameError::TruncatedFrame.to_string().contains("mid-frame"));
        assert!(FrameError::Oversized(99).to_string().contains("99"));
        assert!(FrameError::Malformed.to_string().contains("malformed"));
        let io_err = FrameError::from(io::Error::other("boom"));
        assert!(io_err.to_string().contains("boom"));
        assert!(std::error::Error::source(&io_err).is_some());
        assert!(std::error::Error::source(&FrameError::Malformed).is_none());
        // UnexpectedEof maps to the typed truncation, not a raw Io.
        let eof = io::Error::new(io::ErrorKind::UnexpectedEof, "eof");
        assert!(matches!(FrameError::from(eof), FrameError::TruncatedFrame));
    }
}
