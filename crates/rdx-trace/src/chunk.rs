//! Bounded-size chunking of access streams.
//!
//! The parallel measurement paths (sharded ground truth, batch runners)
//! consume a stream as a sequence of [`Chunk`]s: contiguous runs of
//! accesses tagged with their starting position in the stream. Chunking
//! keeps memory bounded — only a few chunks are ever in flight — while
//! preserving the global access order that reuse metrics depend on:
//! every access keeps its exact stream index (`base_index + offset`),
//! no matter which thread processes the chunk.

use crate::event::Access;
use crate::stream::AccessStream;

/// Default accesses per chunk. 64Ki accesses ≈ 1 MiB of `Access`es:
/// large enough to amortize hand-off, small enough that a handful of
/// in-flight chunks stay within a few percent of a trace's footprint.
pub const DEFAULT_CHUNK_CAPACITY: usize = 1 << 16;

/// A contiguous run of accesses starting at `base_index` in the stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Chunk {
    /// Stream index of `accesses[0]`.
    pub base_index: u64,
    /// The accesses, in stream order.
    pub accesses: Vec<Access>,
}

impl Chunk {
    /// Stream index of access `i` of this chunk.
    #[must_use]
    pub fn index_of(&self, i: usize) -> u64 {
        self.base_index + i as u64
    }

    /// Enumerates `(stream_index, access)` pairs.
    pub fn indexed(&self) -> impl Iterator<Item = (u64, Access)> + '_ {
        self.accesses
            .iter()
            .enumerate()
            .map(|(i, a)| (self.base_index + i as u64, *a))
    }

    /// Number of accesses in the chunk.
    #[must_use]
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// True when the chunk holds no accesses.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }
}

/// Adapter that cuts an [`AccessStream`] into bounded [`Chunk`]s.
#[derive(Debug)]
pub struct Chunker<S> {
    stream: S,
    capacity: usize,
    next_index: u64,
    done: bool,
    bulk: bool,
}

impl<S: AccessStream> Chunker<S> {
    /// Wraps `stream`, producing chunks of at most
    /// [`DEFAULT_CHUNK_CAPACITY`] accesses.
    pub fn new(stream: S) -> Self {
        Self::with_capacity(stream, DEFAULT_CHUNK_CAPACITY)
    }

    /// Wraps `stream` with an explicit per-chunk capacity (≥ 1).
    pub fn with_capacity(stream: S, capacity: usize) -> Self {
        assert!(capacity > 0, "chunk capacity must be positive");
        let bulk = stream.chunk_capable();
        Chunker {
            stream,
            capacity,
            next_index: 0,
            done: false,
            bulk,
        }
    }

    /// Pulls the next chunk, or `None` once the stream is exhausted.
    /// Every chunk except possibly the last is exactly `capacity` long.
    ///
    /// Chunk-capable streams (see [`AccessStream::next_chunk`]) are
    /// drained by bulk slice copies instead of per-access pulls.
    pub fn next_chunk(&mut self) -> Option<Chunk> {
        if self.done {
            return None;
        }
        let mut accesses = Vec::with_capacity(self.capacity);
        while accesses.len() < self.capacity {
            if self.bulk {
                let want = self.capacity - accesses.len();
                let took = match self.stream.next_chunk() {
                    Some(run) => {
                        let k = run.len().min(want);
                        accesses.extend_from_slice(&run[..k]);
                        k
                    }
                    None => 0,
                };
                if took > 0 {
                    self.stream.consume_chunk(took);
                    continue;
                }
            }
            match self.stream.next_access() {
                Some(a) => accesses.push(a),
                None => {
                    self.done = true;
                    break;
                }
            }
        }
        if accesses.is_empty() {
            return None;
        }
        rdx_metrics::counter("rdx.trace.chunk.chunks").incr();
        rdx_metrics::counter("rdx.trace.chunk.accesses").add(accesses.len() as u64);
        let base_index = self.next_index;
        self.next_index += accesses.len() as u64;
        Some(Chunk {
            base_index,
            accesses,
        })
    }

    /// Total accesses handed out so far.
    #[must_use]
    pub fn accesses_delivered(&self) -> u64 {
        self.next_index
    }
}

impl<S: AccessStream> Iterator for Chunker<S> {
    type Item = Chunk;

    fn next(&mut self) -> Option<Chunk> {
        self.next_chunk()
    }
}

/// Stream adapter that guarantees [`AccessStream::next_chunk`] works;
/// created by [`AccessStream::into_chunks`] or [`Chunked::new`].
///
/// Two modes, chosen once at construction from the inner stream's
/// [`chunk_capable`](AccessStream::chunk_capable) answer:
///
/// * **pass-through** — the inner stream already exposes slices; every
///   chunk call forwards directly, zero buffering, zero copies.
/// * **buffering** — accesses are pulled into an internal buffer of at
///   most `capacity` accesses, which is then exposed as a slice. The one
///   buffer is reused for the whole run, so the adapter allocates a
///   bounded amount once, no matter how long the stream is.
///
/// Either way the access sequence is unchanged, so any measurement over
/// the adapter is bit-identical to one over the bare stream.
#[derive(Debug)]
pub struct Chunked<S> {
    inner: S,
    passthrough: bool,
    buf: Vec<Access>,
    pos: usize,
    capacity: usize,
}

impl<S: AccessStream> Chunked<S> {
    /// Wraps `stream` with the default buffer capacity
    /// ([`DEFAULT_CHUNK_CAPACITY`]); pass-through when the stream is
    /// already chunk-capable.
    pub fn new(stream: S) -> Self {
        Self::with_capacity(stream, DEFAULT_CHUNK_CAPACITY)
    }

    /// Wraps `stream` with an explicit buffer capacity (≥ 1). The
    /// capacity only matters in buffering mode: a pass-through inner
    /// stream keeps its own (possibly larger) chunk sizes.
    pub fn with_capacity(stream: S, capacity: usize) -> Self {
        assert!(capacity > 0, "chunk capacity must be positive");
        let passthrough = stream.chunk_capable();
        Chunked {
            inner: stream,
            passthrough,
            buf: Vec::new(),
            pos: 0,
            capacity,
        }
    }

    /// Unwraps the adapter, discarding any buffered (already consumed
    /// from the inner stream, not yet delivered) accesses.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Buffered accesses not yet handed out.
    fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Refills the (empty) buffer with up to `capacity` accesses.
    fn refill(&mut self) {
        debug_assert_eq!(self.buffered(), 0);
        self.buf.clear();
        self.pos = 0;
        if self.buf.capacity() == 0 {
            self.buf.reserve_exact(self.capacity);
        }
        while self.buf.len() < self.capacity {
            match self.inner.next_access() {
                Some(a) => self.buf.push(a),
                None => break,
            }
        }
    }
}

impl<S: AccessStream> AccessStream for Chunked<S> {
    fn next_access(&mut self) -> Option<Access> {
        if self.passthrough {
            return self.inner.next_access();
        }
        if self.buffered() == 0 {
            self.refill();
        }
        let a = self.buf.get(self.pos).copied()?;
        self.pos += 1;
        Some(a)
    }

    fn remaining_hint(&self) -> Option<u64> {
        let hint = self.inner.remaining_hint()?;
        Some(hint + self.buffered() as u64)
    }

    fn chunk_capable(&self) -> bool {
        true
    }

    fn next_chunk(&mut self) -> Option<&[Access]> {
        if self.passthrough {
            return self.inner.next_chunk();
        }
        if self.buffered() == 0 {
            self.refill();
            if self.buffered() == 0 {
                return None;
            }
        }
        Some(&self.buf[self.pos..])
    }

    fn consume_chunk(&mut self, n: usize) {
        if self.passthrough {
            self.inner.consume_chunk(n);
        } else {
            debug_assert!(n <= self.buffered());
            self.pos += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    #[test]
    fn chunks_partition_stream_exactly() {
        let t = Trace::from_addresses("c", (0..1000u64).map(|i| i * 8));
        let chunks: Vec<Chunk> = Chunker::with_capacity(t.stream(), 64).collect();
        assert_eq!(chunks.len(), 1000usize.div_ceil(64));
        let mut expected_base = 0u64;
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(c.base_index, expected_base);
            let expect_len = if i + 1 == chunks.len() { 1000 % 64 } else { 64 };
            assert_eq!(c.len(), expect_len);
            expected_base += c.len() as u64;
        }
        assert_eq!(expected_base, 1000);
        let replayed: Vec<u64> = chunks
            .iter()
            .flat_map(|c| c.accesses.iter().map(|a| a.addr.raw()))
            .collect();
        assert_eq!(replayed, (0..1000u64).map(|i| i * 8).collect::<Vec<_>>());
    }

    #[test]
    fn indexed_positions_are_global() {
        let t = Trace::from_addresses("i", (0..10u64).map(|i| i * 64));
        let chunks: Vec<Chunk> = Chunker::with_capacity(t.stream(), 4).collect();
        let indices: Vec<u64> = chunks
            .iter()
            .flat_map(|c| c.indexed().map(|(i, _)| i))
            .collect();
        assert_eq!(indices, (0..10u64).collect::<Vec<_>>());
        assert_eq!(chunks[1].index_of(2), 6);
    }

    #[test]
    fn empty_stream_yields_no_chunks() {
        let t = Trace::new("e");
        let mut chunker = Chunker::new(t.stream());
        assert!(chunker.next_chunk().is_none());
        assert!(chunker.next_chunk().is_none());
        assert_eq!(chunker.accesses_delivered(), 0);
    }

    #[test]
    fn chunked_passthrough_preserves_inner_chunks() {
        let t = Trace::from_addresses("p", (0..100u64).map(|i| i * 8));
        let mut s = Chunked::with_capacity(t.stream(), 7);
        assert!(s.chunk_capable());
        // Pass-through: the inner TraceStream serves its whole remainder,
        // ignoring the adapter capacity.
        let len = s.next_chunk().expect("chunk").len();
        assert_eq!(len, 100);
        s.consume_chunk(40);
        assert_eq!(s.remaining_hint(), Some(60));
        assert_eq!(s.next_access().unwrap().addr.raw(), 40 * 8);
        assert_eq!(s.count_remaining(), 59);
    }

    #[test]
    fn chunked_buffers_streaming_sources() {
        use crate::stream::Opaque;
        let t = Trace::from_addresses("b", (0..20u64).map(|i| i * 8));
        let mut s = Chunked::with_capacity(Opaque::new(t.stream()), 8);
        assert!(s.chunk_capable());
        let mut seen: Vec<u64> = Vec::new();
        let mut lens = Vec::new();
        while let Some(chunk) = s.next_chunk() {
            lens.push(chunk.len());
            seen.extend(chunk.iter().map(|a| a.addr.raw()));
            let taken = chunk.len();
            s.consume_chunk(taken);
        }
        assert_eq!(lens, vec![8, 8, 4]);
        assert_eq!(seen, (0..20u64).map(|i| i * 8).collect::<Vec<_>>());
    }

    #[test]
    fn chunked_partial_consume_repeeks_remainder() {
        use crate::stream::Opaque;
        let t = Trace::from_addresses("r", (0..10u64).map(|i| i * 8));
        let mut s = Chunked::with_capacity(Opaque::new(t.stream()), 6);
        assert_eq!(s.next_chunk().expect("first fill").len(), 6);
        s.consume_chunk(2);
        let chunk = s.next_chunk().expect("rest of the buffer");
        assert_eq!(chunk.len(), 4);
        assert_eq!(chunk[0].addr.raw(), 16);
        s.consume_chunk(4);
        // Scalar reads interleave with chunk reads over the same buffer.
        assert_eq!(s.next_access().unwrap().addr.raw(), 48);
        assert_eq!(s.next_chunk().expect("tail").len(), 3);
        s.consume_chunk(3);
        assert!(s.next_chunk().is_none());
        assert!(s.next_access().is_none());
    }

    #[test]
    fn into_chunks_builds_adapter() {
        use crate::stream::AccessStream;
        let t = Trace::from_addresses("a", (0..5u64).map(|i| i * 8));
        let mut s = t.stream().into_chunks(2);
        assert_eq!(s.next_chunk().expect("chunk").len(), 5);
        s.consume_chunk(5);
        assert!(s.next_chunk().is_none());
        let inner = s.into_inner();
        assert_eq!(inner.remaining_hint(), Some(0));
    }

    #[test]
    fn chunker_bulk_fills_from_capable_streams() {
        let t = Trace::from_addresses("k", (0..1000u64).map(|i| i * 8));
        // Chunk-capable source: the Chunker slices it instead of pulling
        // per access, but the produced chunks are identical.
        let bulk: Vec<Chunk> = Chunker::with_capacity(t.stream(), 64).collect();
        let scalar: Vec<Chunk> =
            Chunker::with_capacity(crate::stream::Opaque::new(t.stream()), 64).collect();
        assert_eq!(bulk, scalar);
    }

    #[test]
    fn exact_multiple_has_no_empty_tail() {
        let t = Trace::from_addresses("m", (0..128u64).map(|i| i * 8));
        let chunks: Vec<Chunk> = Chunker::with_capacity(t.stream(), 64).collect();
        assert_eq!(chunks.len(), 2);
        assert!(chunks.iter().all(|c| c.len() == 64));
    }
}
