//! Bounded-size chunking of access streams.
//!
//! The parallel measurement paths (sharded ground truth, batch runners)
//! consume a stream as a sequence of [`Chunk`]s: contiguous runs of
//! accesses tagged with their starting position in the stream. Chunking
//! keeps memory bounded — only a few chunks are ever in flight — while
//! preserving the global access order that reuse metrics depend on:
//! every access keeps its exact stream index (`base_index + offset`),
//! no matter which thread processes the chunk.

use crate::event::Access;
use crate::stream::AccessStream;

/// Default accesses per chunk. 64Ki accesses ≈ 1 MiB of `Access`es:
/// large enough to amortize hand-off, small enough that a handful of
/// in-flight chunks stay within a few percent of a trace's footprint.
pub const DEFAULT_CHUNK_CAPACITY: usize = 1 << 16;

/// A contiguous run of accesses starting at `base_index` in the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// Stream index of `accesses[0]`.
    pub base_index: u64,
    /// The accesses, in stream order.
    pub accesses: Vec<Access>,
}

impl Chunk {
    /// Stream index of access `i` of this chunk.
    #[must_use]
    pub fn index_of(&self, i: usize) -> u64 {
        self.base_index + i as u64
    }

    /// Enumerates `(stream_index, access)` pairs.
    pub fn indexed(&self) -> impl Iterator<Item = (u64, Access)> + '_ {
        self.accesses
            .iter()
            .enumerate()
            .map(|(i, a)| (self.base_index + i as u64, *a))
    }

    /// Number of accesses in the chunk.
    #[must_use]
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// True when the chunk holds no accesses.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }
}

/// Adapter that cuts an [`AccessStream`] into bounded [`Chunk`]s.
#[derive(Debug)]
pub struct Chunker<S> {
    stream: S,
    capacity: usize,
    next_index: u64,
    done: bool,
}

impl<S: AccessStream> Chunker<S> {
    /// Wraps `stream`, producing chunks of at most
    /// [`DEFAULT_CHUNK_CAPACITY`] accesses.
    pub fn new(stream: S) -> Self {
        Self::with_capacity(stream, DEFAULT_CHUNK_CAPACITY)
    }

    /// Wraps `stream` with an explicit per-chunk capacity (≥ 1).
    pub fn with_capacity(stream: S, capacity: usize) -> Self {
        assert!(capacity > 0, "chunk capacity must be positive");
        Chunker {
            stream,
            capacity,
            next_index: 0,
            done: false,
        }
    }

    /// Pulls the next chunk, or `None` once the stream is exhausted.
    /// Every chunk except possibly the last is exactly `capacity` long.
    pub fn next_chunk(&mut self) -> Option<Chunk> {
        if self.done {
            return None;
        }
        let mut accesses = Vec::with_capacity(self.capacity);
        while accesses.len() < self.capacity {
            match self.stream.next_access() {
                Some(a) => accesses.push(a),
                None => {
                    self.done = true;
                    break;
                }
            }
        }
        if accesses.is_empty() {
            return None;
        }
        rdx_metrics::counter("rdx.trace.chunk.chunks").incr();
        rdx_metrics::counter("rdx.trace.chunk.accesses").add(accesses.len() as u64);
        let base_index = self.next_index;
        self.next_index += accesses.len() as u64;
        Some(Chunk {
            base_index,
            accesses,
        })
    }

    /// Total accesses handed out so far.
    #[must_use]
    pub fn accesses_delivered(&self) -> u64 {
        self.next_index
    }
}

impl<S: AccessStream> Iterator for Chunker<S> {
    type Item = Chunk;

    fn next(&mut self) -> Option<Chunk> {
        self.next_chunk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    #[test]
    fn chunks_partition_stream_exactly() {
        let t = Trace::from_addresses("c", (0..1000u64).map(|i| i * 8));
        let chunks: Vec<Chunk> = Chunker::with_capacity(t.stream(), 64).collect();
        assert_eq!(chunks.len(), 1000usize.div_ceil(64));
        let mut expected_base = 0u64;
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(c.base_index, expected_base);
            let expect_len = if i + 1 == chunks.len() { 1000 % 64 } else { 64 };
            assert_eq!(c.len(), expect_len);
            expected_base += c.len() as u64;
        }
        assert_eq!(expected_base, 1000);
        let replayed: Vec<u64> = chunks
            .iter()
            .flat_map(|c| c.accesses.iter().map(|a| a.addr.raw()))
            .collect();
        assert_eq!(replayed, (0..1000u64).map(|i| i * 8).collect::<Vec<_>>());
    }

    #[test]
    fn indexed_positions_are_global() {
        let t = Trace::from_addresses("i", (0..10u64).map(|i| i * 64));
        let chunks: Vec<Chunk> = Chunker::with_capacity(t.stream(), 4).collect();
        let indices: Vec<u64> = chunks
            .iter()
            .flat_map(|c| c.indexed().map(|(i, _)| i))
            .collect();
        assert_eq!(indices, (0..10u64).collect::<Vec<_>>());
        assert_eq!(chunks[1].index_of(2), 6);
    }

    #[test]
    fn empty_stream_yields_no_chunks() {
        let t = Trace::new("e");
        let mut chunker = Chunker::new(t.stream());
        assert!(chunker.next_chunk().is_none());
        assert!(chunker.next_chunk().is_none());
        assert_eq!(chunker.accesses_delivered(), 0);
    }

    #[test]
    fn exact_multiple_has_no_empty_tail() {
        let t = Trace::from_addresses("m", (0..128u64).map(|i| i * 8));
        let chunks: Vec<Chunk> = Chunker::with_capacity(t.stream(), 64).collect();
        assert_eq!(chunks.len(), 2);
        assert!(chunks.iter().all(|c| c.len() == 64));
    }
}
