//! Memory access traces: the common currency of this workspace.
//!
//! Every component — the simulated machine, the RDX profiler, ground-truth
//! measurement, the baselines and the cache models — consumes a stream of
//! [`Access`]es. This crate defines:
//!
//! * [`Address`] / [`AccessKind`] / [`Access`] — the event vocabulary.
//! * [`AccessStream`] — a pull-based stream of accesses, so that
//!   billion-access workloads never need to be materialized; [`Trace`] is the
//!   materialized form used by tests and small experiments.
//! * [`Granularity`] — byte ↔ cache-line ↔ word address mapping. Reuse
//!   distance is measured at a chosen granularity (the paper uses cache
//!   lines, a.k.a. data blocks of 64 bytes).
//! * [`Chunker`] / [`Chunk`] — bounded-size, globally-indexed chunking of
//!   a stream, the transport unit of the parallel measurement paths.
//! * [`AccessStream::next_chunk`] / [`Chunked`] — borrowed-slice access to
//!   contiguous runs of a stream, the transport of the machine's bulk-scan
//!   fast path ([`Opaque`] hides the capability when the per-access slow
//!   path must be forced).
//! * [`io`] — a compact binary trace format (magic + version header,
//!   delta-encoded addresses) for persisting traces, with a streaming
//!   [`TraceReader`] and typed [`TraceError`]s: malformed input is a
//!   recoverable error everywhere, never a panic. The reader is
//!   chunk-capable: [`TraceReader::decode_chunk`] bulk-decodes a whole
//!   bounded chunk per call, and [`PipelinedReader`] runs that decoder
//!   on a dedicated thread (decode-ahead over a ring of recycled
//!   buffers), so file-backed profiling feeds the machine fast path.
//! * [`frame`] — a length-prefixed frame codec with typed
//!   [`FrameError`]s and [`PayloadWriter`] / [`PayloadReader`] field
//!   encoding, the wire layer of the `rdx serve` protocol.
//! * [`TraceStats`] — single-pass summary statistics of a stream.
//!
//! # Example
//!
//! ```
//! use rdx_trace::{Access, AccessKind, AccessStream, Address, Trace};
//!
//! let trace = Trace::from_addresses("demo", [0x1000u64, 0x1040, 0x1000]);
//! let mut stream = trace.stream();
//! assert_eq!(stream.next_access().unwrap().addr, Address::new(0x1000));
//! assert_eq!(trace.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chunk;
mod event;
pub mod frame;
pub mod io;
pub mod kernels;
mod pipeline;
mod stats;
mod stream;
mod trace;

pub use bytes::Bytes;
pub use chunk::{Chunk, Chunked, Chunker, DEFAULT_CHUNK_CAPACITY};
pub use event::{Access, AccessKind, Address, Granularity};
pub use frame::{FrameError, PayloadReader, PayloadWriter, MAX_FRAME_LEN};
pub use io::{RecordScanner, TraceError, TraceReader, MAX_NAME_LEN};
pub use kernels::{DecodeKernel, KernelChoice, KernelEntry, KernelKind};
pub use pipeline::{
    DecodeMsg, DecodeTurn, DecoderTask, PipelineOptions, PipelinedReader, VirtualLink,
};
pub use stats::TraceStats;
pub use stream::{AccessStream, FnStream, Opaque, Take};
pub use trace::{Trace, TraceStream};
