//! The event vocabulary: addresses, access kinds, granularities.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A byte-granular virtual memory address.
///
/// Addresses are plain `u64`s wrapped for type safety; reuse-distance
/// analysis regularly mixes byte addresses, word indices and cache-line
/// numbers, and the wrapper plus [`Granularity`] keep those apart.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Address(u64);

impl Address {
    /// Creates an address from a raw byte address.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Address(raw)
    }

    /// The raw byte address.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Maps this byte address to its block number at the given granularity.
    #[must_use]
    pub fn block(self, granularity: Granularity) -> u64 {
        self.0 >> granularity.shift()
    }

    /// Returns the address advanced by `bytes` (saturating).
    #[must_use]
    pub fn offset(self, bytes: u64) -> Address {
        Address(self.0.saturating_add(bytes))
    }
}

impl From<u64> for Address {
    fn from(raw: u64) -> Self {
        Address(raw)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// Whether an access reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A memory load.
    Load,
    /// A memory store.
    Store,
}

impl AccessKind {
    /// Returns true for [`AccessKind::Store`].
    #[must_use]
    pub fn is_store(self) -> bool {
        matches!(self, AccessKind::Store)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Load => write!(f, "load"),
            AccessKind::Store => write!(f, "store"),
        }
    }
}

/// One memory access event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Access {
    /// The byte address accessed.
    pub addr: Address,
    /// Load or store.
    pub kind: AccessKind,
}

impl Access {
    /// Convenience constructor for a load.
    #[must_use]
    pub fn load(addr: impl Into<Address>) -> Self {
        Access {
            addr: addr.into(),
            kind: AccessKind::Load,
        }
    }

    /// Convenience constructor for a store.
    #[must_use]
    pub fn store(addr: impl Into<Address>) -> Self {
        Access {
            addr: addr.into(),
            kind: AccessKind::Store,
        }
    }
}

/// The granularity at which reuse distance is measured.
///
/// The paper measures at cache-line (data block) granularity; measuring at
/// byte or word granularity yields different histograms, so the granularity
/// travels with every profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Granularity {
    shift: u32,
}

impl Granularity {
    /// Byte granularity (block size 1).
    pub const BYTE: Granularity = Granularity { shift: 0 };
    /// 8-byte word granularity.
    pub const WORD: Granularity = Granularity { shift: 3 };
    /// 64-byte cache-line granularity — the paper's default.
    pub const CACHE_LINE: Granularity = Granularity { shift: 6 };
    /// 4 KiB page granularity.
    pub const PAGE: Granularity = Granularity { shift: 12 };

    /// Creates a granularity from a power-of-two block size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is zero or not a power of two.
    #[must_use]
    pub fn from_block_bytes(block_bytes: u64) -> Self {
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a non-zero power of two, got {block_bytes}"
        );
        Granularity {
            shift: block_bytes.trailing_zeros(),
        }
    }

    /// The block size in bytes.
    #[must_use]
    pub fn block_bytes(self) -> u64 {
        1u64 << self.shift
    }

    /// The right-shift applied to byte addresses.
    #[must_use]
    pub fn shift(self) -> u32 {
        self.shift
    }
}

impl Default for Granularity {
    fn default() -> Self {
        Granularity::CACHE_LINE
    }
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.block_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_block_mapping() {
        let a = Address::new(0x1047);
        assert_eq!(a.block(Granularity::BYTE), 0x1047);
        assert_eq!(a.block(Granularity::CACHE_LINE), 0x41);
        assert_eq!(a.block(Granularity::PAGE), 0x1);
        assert_eq!(a.offset(0x19).raw(), 0x1060);
    }

    #[test]
    fn address_display() {
        assert_eq!(Address::new(0xff).to_string(), "0xff");
        assert_eq!(format!("{:x}", Address::new(0xff)), "ff");
    }

    #[test]
    fn granularity_block_bytes() {
        assert_eq!(Granularity::BYTE.block_bytes(), 1);
        assert_eq!(Granularity::WORD.block_bytes(), 8);
        assert_eq!(Granularity::CACHE_LINE.block_bytes(), 64);
        assert_eq!(Granularity::PAGE.block_bytes(), 4096);
        assert_eq!(Granularity::from_block_bytes(32).block_bytes(), 32);
        assert_eq!(Granularity::default(), Granularity::CACHE_LINE);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn granularity_rejects_non_power_of_two() {
        let _ = Granularity::from_block_bytes(48);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn granularity_rejects_zero() {
        let _ = Granularity::from_block_bytes(0);
    }

    #[test]
    fn access_constructors() {
        let l = Access::load(0x10u64);
        assert_eq!(l.kind, AccessKind::Load);
        assert!(!l.kind.is_store());
        let s = Access::store(0x20u64);
        assert!(s.kind.is_store());
        assert_eq!(s.addr, Address::new(0x20));
        assert_eq!(AccessKind::Load.to_string(), "load");
        assert_eq!(AccessKind::Store.to_string(), "store");
    }

    #[test]
    fn address_offset_saturates() {
        let a = Address::new(u64::MAX - 1);
        assert_eq!(a.offset(100).raw(), u64::MAX);
    }
}
