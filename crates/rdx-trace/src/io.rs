//! Binary trace serialization.
//!
//! Format (`RDXT` version 1), little-endian throughout:
//!
//! ```text
//! magic    [u8; 4]  = b"RDXT"
//! version  u32      = 1
//! name_len u32
//! name     [u8; name_len] (UTF-8)
//! count    u64
//! records  count × record
//! ```
//!
//! Each record is a LEB128-style varint of `zigzag(addr_delta) << 1 | kind`,
//! where `addr_delta` is the signed difference from the previous address.
//! Regular strides compress to 1–2 bytes per access, which matters for
//! multi-hundred-million access traces.
//!
//! Malformed input is **never** a panic: every decode path — the one-shot
//! [`from_bytes`] / [`read_trace`] as well as the streaming
//! [`TraceReader`] — reports a typed [`TraceError`] and leaves the
//! process in control of recovery. Proptests below drive arbitrary
//! garbage through both layers to keep that guarantee honest.

use crate::chunk::{Chunk, DEFAULT_CHUNK_CAPACITY};
use crate::event::{Access, AccessKind, Address};
use crate::kernels::{self, KernelChoice, KernelKind};
use crate::stream::AccessStream;
use crate::trace::Trace;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"RDXT";
const VERSION: u32 = 1;

/// Longest embedded trace name the format accepts, in bytes.
///
/// The wire field is a `u32`, but an unbounded name is useless and a
/// `name.len() as u32` cast would silently truncate the length field of
/// a multi-gigabyte name, desynchronizing the header from its payload.
/// Construction ([`crate::Trace`]) clamps names to this bound; encoding
/// ([`try_to_bytes`]) and decoding ([`TraceReader::new`]) reject
/// anything longer.
pub const MAX_NAME_LEN: usize = 4096;

/// `name` cut at the last char boundary that fits [`MAX_NAME_LEN`].
#[must_use]
pub(crate) fn clamp_name(name: &str) -> &str {
    if name.len() <= MAX_NAME_LEN {
        return name;
    }
    let mut end = MAX_NAME_LEN;
    while !name.is_char_boundary(end) {
        end -= 1;
    }
    &name[..end]
}

/// Errors produced by trace (de)serialization.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input does not start with the `RDXT` magic.
    BadMagic,
    /// The input has an unsupported format version.
    BadVersion(u32),
    /// The input ended before the declared record count was read.
    Truncated,
    /// A varint record is non-canonical: a continuation byte carries
    /// significant bits past the 128-bit payload (an overlong encoding
    /// would silently decode to a wrong value), or the header violates a
    /// format bound such as [`MAX_NAME_LEN`]. Unlike
    /// [`Truncated`](TraceError::Truncated) this is corruption, not
    /// short input — retrying with more bytes cannot fix it.
    Malformed,
    /// The embedded name is not valid UTF-8.
    BadName,
    /// The trace name exceeds [`MAX_NAME_LEN`] bytes and cannot be
    /// serialized without clamping.
    NameTooLong(usize),
    /// Bytes remain after the declared record count was decoded.
    TrailingData(usize),
    /// An internal pipeline failure: a decode stage went away without
    /// delivering a verdict (e.g. a decoder thread that exited without
    /// reporting). Unlike [`Truncated`](TraceError::Truncated) this says
    /// nothing about the input — it is infrastructure, not data.
    Internal(&'static str),
}

/// Former name of [`TraceError`].
#[deprecated(note = "renamed to TraceError")]
pub type TraceIoError = TraceError;

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceError::BadMagic => write!(f, "not a trace file (bad magic)"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::Truncated => write!(f, "trace file truncated (input ended early)"),
            TraceError::Malformed => {
                write!(f, "trace record malformed (overlong varint encoding)")
            }
            TraceError::BadName => write!(f, "trace name is not valid utf-8"),
            TraceError::NameTooLong(n) => {
                write!(f, "trace name is {n} bytes; the limit is {MAX_NAME_LEN}")
            }
            TraceError::TrailingData(n) => {
                write!(f, "{n} trailing byte(s) after the declared record count")
            }
            TraceError::Internal(what) => {
                write!(f, "internal decode-pipeline failure: {what}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// A fresh instance of a parked record-decode error. `TraceError` is
/// not `Clone` (it can wrap `std::io::Error`), but the errors the
/// record decoders park are always the dataless kinds, which a fused
/// reader must keep re-reporting without losing the
/// truncated-vs-malformed distinction.
fn dup_decode_error(e: &TraceError) -> TraceError {
    match e {
        TraceError::Malformed => TraceError::Malformed,
        _ => TraceError::Truncated,
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

pub(crate) fn put_varint(buf: &mut BytesMut, mut v: u128) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// True when OR-ing `sig << shift` into a `u128` would lose bits: the
/// shift is past the payload width, or the byte's significant bits do
/// not all fit below bit 128. Such an encoding is overlong — decoding
/// it "successfully" would produce a silently wrong value, so both the
/// scalar and the bulk decoder reject it as [`TraceError::Malformed`].
#[inline]
pub(crate) fn varint_bits_overflow(sig: u128, shift: u32) -> bool {
    // `shift >= 128` must short-circuit: a shift that large is itself
    // UB-adjacent (masked in release, panic in debug).
    shift >= 128 || (sig << shift) >> shift != sig
}

pub(crate) fn get_varint(buf: &mut Bytes) -> Result<u128, TraceError> {
    let mut v = 0u128;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(TraceError::Truncated);
        }
        let byte = buf.get_u8();
        let sig = u128::from(byte & 0x7f);
        if varint_bits_overflow(sig, shift) {
            return Err(TraceError::Malformed);
        }
        v |= sig << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Serializes a trace into bytes, erroring on an unencodable name.
///
/// [`Trace`] construction clamps names to [`MAX_NAME_LEN`], so inputs
/// built through its constructors always encode; the error path guards
/// traces deserialized or patched by other means.
///
/// # Errors
///
/// [`TraceError::NameTooLong`] when the name exceeds [`MAX_NAME_LEN`]
/// bytes — the header length field must never be silently truncated.
pub fn try_to_bytes(trace: &Trace) -> Result<Bytes, TraceError> {
    if trace.name().len() > MAX_NAME_LEN {
        return Err(TraceError::NameTooLong(trace.name().len()));
    }
    Ok(to_bytes(trace))
}

/// Serializes a trace into bytes.
///
/// The name is written clamped to [`MAX_NAME_LEN`] bytes (a no-op for
/// traces built through [`Trace`]'s constructors, which already enforce
/// the bound); the length field always matches the bytes written. Use
/// [`try_to_bytes`] to reject over-long names instead of clamping.
#[must_use]
pub fn to_bytes(trace: &Trace) -> Bytes {
    let mut buf = BytesMut::with_capacity(trace.len() * 2 + 64);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    let name = clamp_name(trace.name()).as_bytes();
    // The clamp bounds `name.len()` ≤ MAX_NAME_LEN, so this cast is
    // exact and the length field agrees with the payload that follows.
    buf.put_u32_le(name.len() as u32);
    buf.put_slice(name);
    buf.put_u64_le(trace.len() as u64);
    let mut prev: u64 = 0;
    for a in trace.iter() {
        let delta = a.addr.raw().wrapping_sub(prev) as i64;
        prev = a.addr.raw();
        let kind_bit = u128::from(a.kind.is_store());
        // The zigzagged delta needs the full 64 bits for |delta| ≥ 2^62,
        // so the kind bit pushes the record into u128 varint territory.
        put_varint(&mut buf, (u128::from(zigzag(delta)) << 1) | kind_bit);
    }
    rdx_metrics::counter("rdx.trace.encode.events").add(trace.len() as u64);
    rdx_metrics::counter("rdx.trace.encode.bytes").add(buf.len() as u64);
    buf.freeze()
}

/// Incremental decoder of the `RDXT` format that yields accesses as an
/// [`AccessStream`], so a trace file can feed the profiler without ever
/// being materialized as a [`Trace`].
///
/// Construction ([`TraceReader::new`]) validates the header eagerly.
/// Records decode lazily: [`try_next`](TraceReader::try_next) surfaces
/// malformed input as a typed [`TraceError`], and the infallible
/// [`AccessStream`] view ends the stream on error while parking the
/// error in [`error`](TraceReader::error) for the driver to inspect
/// afterwards — corrupt input is a recoverable condition, not a panic.
#[derive(Debug)]
pub struct TraceReader {
    buf: Bytes,
    name: String,
    declared: u64,
    decoded: u64,
    prev: u64,
    error: Option<TraceError>,
    /// Bulk-decoded accesses not yet handed out through the chunk API.
    pending: Chunk,
    pos: usize,
    chunk_capacity: usize,
    /// The decode kernel [`decode_chunk`](TraceReader::decode_chunk)
    /// dispatches to, resolved once at construction (overridable via
    /// [`with_kernel`](TraceReader::with_kernel)).
    kernel: KernelKind,
}

impl TraceReader {
    /// Parses the header and prepares to stream the records.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] if the magic, version, name, or count
    /// fields are missing or malformed.
    pub fn new(bytes: impl Into<Bytes>) -> Result<TraceReader, TraceError> {
        let mut buf: Bytes = bytes.into();
        let total_len = buf.remaining();
        if buf.remaining() < 4 || &buf.copy_to_bytes(4)[..] != MAGIC {
            return Err(TraceError::BadMagic);
        }
        if buf.remaining() < 4 {
            return Err(TraceError::Truncated);
        }
        let version = buf.get_u32_le();
        if version != VERSION {
            return Err(TraceError::BadVersion(version));
        }
        if buf.remaining() < 4 {
            return Err(TraceError::Truncated);
        }
        let name_len = buf.get_u32_le() as usize;
        if name_len > MAX_NAME_LEN {
            return Err(TraceError::Malformed);
        }
        if buf.remaining() < name_len {
            return Err(TraceError::Truncated);
        }
        let name = String::from_utf8(buf.copy_to_bytes(name_len).to_vec())
            .map_err(|_| TraceError::BadName)?;
        if buf.remaining() < 8 {
            return Err(TraceError::Truncated);
        }
        let declared = buf.get_u64_le();
        rdx_metrics::counter("rdx.trace.decode.bytes").add((total_len - buf.remaining()) as u64);
        rdx_metrics::counter("rdx.trace.decode.kernel").incr();
        Ok(TraceReader {
            buf,
            name,
            declared,
            decoded: 0,
            prev: 0,
            error: None,
            pending: Chunk::default(),
            pos: 0,
            chunk_capacity: DEFAULT_CHUNK_CAPACITY,
            kernel: kernels::resolve_decode(KernelChoice::Auto),
        })
    }

    /// Selects the decode kernel [`decode_chunk`](TraceReader::decode_chunk)
    /// dispatches to (default: `auto`, the cheapest available kernel in
    /// [`kernels::decode_kernels`]). Every kernel is bit-identical in
    /// output; the choice only affects speed.
    #[must_use]
    pub fn with_kernel(mut self, choice: KernelChoice) -> Self {
        self.kernel = kernels::resolve_decode(choice);
        self
    }

    /// The decode kernel this reader resolved to.
    #[must_use]
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// Sets the number of accesses the reader bulk-decodes per refill of
    /// its internal chunk buffer (≥ 1; default
    /// [`DEFAULT_CHUNK_CAPACITY`]). Only affects the chunk API, not
    /// [`try_next`](TraceReader::try_next).
    #[must_use]
    pub fn with_chunk_capacity(mut self, capacity: usize) -> Self {
        self.chunk_capacity = capacity.max(1);
        self
    }

    /// Reads all of `reader` and parses the header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and header format errors.
    pub fn from_reader<R: Read>(mut reader: R) -> Result<TraceReader, TraceError> {
        let mut data = Vec::new();
        reader.read_to_end(&mut data)?;
        TraceReader::new(data)
    }

    /// The trace's embedded name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The record count declared in the header.
    #[must_use]
    pub fn declared_len(&self) -> u64 {
        self.declared
    }

    /// Records decoded from the wire so far. When the chunk API is in
    /// use this can run ahead of what the consumer has pulled by up to
    /// one internal chunk buffer.
    #[must_use]
    pub fn decoded(&self) -> u64 {
        self.decoded
    }

    /// The decode error the [`AccessStream`] view ran into, if any.
    ///
    /// Drivers that consume the reader as an infallible stream must
    /// check this once the stream ends to distinguish a clean EOF from
    /// corrupt input.
    #[must_use]
    pub fn error(&self) -> Option<&TraceError> {
        self.error.as_ref()
    }

    /// Decodes the next access, `Ok(None)` at a clean end of trace.
    ///
    /// The reader is fused: after an error or the final record it keeps
    /// returning the error / `Ok(None)` respectively.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Truncated`] when the input ends or a
    /// varint is malformed before the declared record count is reached.
    pub fn try_next(&mut self) -> Result<Option<Access>, TraceError> {
        // Serve accesses already bulk-decoded into the chunk buffer
        // first (mixed chunk/scalar consumption must preserve order);
        // after an error the buffer holds the decoded prefix, which is
        // still delivered before the parked error surfaces.
        if self.pos < self.pending.len() {
            if let Some(a) = self.pending.accesses.get(self.pos).copied() {
                self.pos += 1;
                return Ok(Some(a));
            }
        }
        if self.error.is_some() {
            return Err(self.parked());
        }
        if self.decoded >= self.declared {
            return Ok(None);
        }
        let before = self.buf.remaining();
        let raw = match get_varint(&mut self.buf) {
            Ok(raw) => raw,
            Err(e) => {
                self.error = Some(dup_decode_error(&e));
                return Err(e);
            }
        };
        let kind = if raw & 1 == 1 {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        let delta = unzigzag((raw >> 1) as u64);
        let addr = self.prev.wrapping_add(delta as u64);
        self.prev = addr;
        self.decoded += 1;
        rdx_metrics::counter("rdx.trace.decode.bytes").add((before - self.buf.remaining()) as u64);
        rdx_metrics::counter("rdx.trace.decode.events").incr();
        Ok(Some(Access {
            addr: Address::new(addr),
            kind,
        }))
    }

    /// Bulk-decodes up to `max` accesses into `out` in one tight pass.
    ///
    /// `out` is cleared and reused: `out.base_index` is set to the
    /// stream index of the first decoded access, and the per-record
    /// bounds/tag checks of [`try_next`](TraceReader::try_next) are
    /// amortized over the whole chunk by decoding straight from the
    /// backing slice with one cursor advance at the end.
    ///
    /// Returns the number of accesses decoded; `Ok(0)` means a clean
    /// end of trace. The reader stays fused exactly like `try_next`:
    /// after an error every further call fails.
    ///
    /// # Errors
    ///
    /// [`TraceError::Truncated`] when the input ends or a varint is
    /// malformed before the declared record count is reached. The
    /// successfully decoded prefix (possibly empty) is left in `out` —
    /// error recovery is at chunk granularity: the prefix is valid,
    /// everything after the error is not.
    pub fn decode_chunk(&mut self, out: &mut Chunk, max: usize) -> Result<usize, TraceError> {
        out.base_index = self.decoded;
        out.accesses.clear();
        if self.error.is_some() {
            return Err(self.parked());
        }
        let remaining = self.declared - self.decoded;
        let target = usize::try_from(remaining).map_or(max, |r| r.min(max));
        if target == 0 {
            return Ok(0);
        }
        // Every record is at least one byte, so the bytes left bound the
        // record count: a corrupt header declaring 2^60 records cannot
        // drive this reservation past the input size (or `max`).
        out.accesses.reserve(target.min(self.buf.remaining()));
        let bytes = self.buf.chunk();
        let mut prev = self.prev;
        // The per-record byte crunching is a kernel (see `kernels`):
        // scalar is the oracle, SWAR the default; all are bit-identical.
        let run = kernels::run_decode(self.kernel, bytes, target, &mut prev, &mut out.accesses);
        let committed = run.committed;
        let failure = run.failure;
        let n = out.accesses.len();
        self.prev = prev;
        self.decoded += n as u64;
        self.buf.advance(committed);
        if n > 0 {
            rdx_metrics::counter("rdx.trace.decode.bytes").add(committed as u64);
            rdx_metrics::counter("rdx.trace.decode.events").add(n as u64);
            rdx_metrics::counter("rdx.trace.decode.accesses").add(n as u64);
            rdx_metrics::counter("rdx.trace.decode.chunks").incr();
            match self.kernel {
                KernelKind::Scalar => {
                    rdx_metrics::counter("rdx.trace.decode.scalar_accesses").add(n as u64);
                }
                KernelKind::Swar | KernelKind::Simd => {
                    rdx_metrics::counter("rdx.trace.decode.swar_accesses").add(n as u64);
                }
            }
        }
        if let Some(e) = failure {
            self.error = Some(dup_decode_error(&e));
            return Err(e);
        }
        Ok(n)
    }

    /// A fresh instance of the reader's parked error (fused readers
    /// keep re-reporting it on every further decode call).
    fn parked(&self) -> TraceError {
        match &self.error {
            Some(e) => dup_decode_error(e),
            None => TraceError::Truncated,
        }
    }

    /// Refills the internal chunk buffer via
    /// [`decode_chunk`](TraceReader::decode_chunk). A failed bulk decode
    /// parks the error exactly like `try_next`; the successfully decoded
    /// prefix is still served.
    fn refill(&mut self) {
        let mut pending = std::mem::take(&mut self.pending);
        let _ = self.decode_chunk(&mut pending, self.chunk_capacity);
        self.pending = pending;
        self.pos = 0;
    }

    /// Accesses bulk-decoded but not yet handed out.
    fn buffered(&self) -> usize {
        self.pending.len() - self.pos
    }

    /// Verifies the reader consumed the input exactly: all declared
    /// records decoded and no bytes left over.
    ///
    /// # Errors
    ///
    /// [`TraceError::Truncated`] if records are missing,
    /// [`TraceError::TrailingData`] if bytes remain.
    pub fn finish(self) -> Result<(), TraceError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.decoded < self.declared {
            return Err(TraceError::Truncated);
        }
        if self.buf.has_remaining() {
            return Err(TraceError::TrailingData(self.buf.remaining()));
        }
        Ok(())
    }
}

impl AccessStream for TraceReader {
    fn next_access(&mut self) -> Option<Access> {
        // Decode errors end the stream; the error is parked in
        // `self.error` for the driver to inspect afterwards.
        self.try_next().unwrap_or_default()
    }

    fn remaining_hint(&self) -> Option<u64> {
        let buffered = self.buffered() as u64;
        if self.error.is_some() {
            return Some(buffered);
        }
        Some(buffered + (self.declared - self.decoded))
    }

    fn chunk_capable(&self) -> bool {
        true
    }

    fn next_chunk(&mut self) -> Option<&[Access]> {
        if self.buffered() == 0 {
            self.refill();
            if self.buffered() == 0 {
                return None;
            }
        }
        self.pending.accesses.get(self.pos..)
    }

    fn consume_chunk(&mut self, n: usize) {
        debug_assert!(n <= self.buffered());
        self.pos += n.min(self.buffered());
    }
}

/// Deserializes a trace from bytes.
///
/// # Errors
///
/// Returns a [`TraceError`] if the input is not a valid version-1 trace
/// consumed exactly (trailing bytes after the declared records are
/// rejected as [`TraceError::TrailingData`]).
pub fn from_bytes(bytes: impl Into<Bytes>) -> Result<Trace, TraceError> {
    let mut reader = TraceReader::new(bytes)?;
    let mut trace = Trace::new(reader.name().to_owned());
    while let Some(a) = reader.try_next()? {
        trace.push(a);
    }
    reader.finish()?;
    Ok(trace)
}

/// Writes a trace to any [`Write`] sink (a `&mut W` also works).
///
/// # Errors
///
/// Propagates I/O errors from the sink.
pub fn write_trace<W: Write>(mut writer: W, trace: &Trace) -> Result<(), TraceError> {
    writer.write_all(&to_bytes(trace))?;
    Ok(())
}

/// Reads a trace from any [`Read`] source (a `&mut R` also works).
///
/// # Errors
///
/// Propagates I/O errors and format errors.
pub fn read_trace<R: Read>(mut reader: R) -> Result<Trace, TraceError> {
    let mut data = Vec::new();
    reader.read_to_end(&mut data)?;
    from_bytes(data)
}

/// Incremental validator of a varint record stream that arrives in
/// arbitrary byte fragments (a long-lived ingestion session receiving
/// framed chunks cannot hold complete records per fragment).
///
/// The scanner applies the exact canonical-form rule of the decoders —
/// a continuation byte whose significant bits overflow the 128-bit
/// payload is [`TraceError::Malformed`] — without materializing values,
/// so corrupt input is rejected the moment it arrives instead of at the
/// first full decode. A fragment may end mid-record
/// ([`mid_record`](RecordScanner::mid_record)); the partial state
/// carries over to the next [`scan`](RecordScanner::scan) call.
#[derive(Debug, Default)]
pub struct RecordScanner {
    shift: u32,
    records: u64,
    malformed: bool,
}

impl RecordScanner {
    /// A scanner positioned at a record boundary.
    #[must_use]
    pub fn new() -> RecordScanner {
        RecordScanner::default()
    }

    /// Scans one more fragment of the record stream.
    ///
    /// The scanner is fused: after a malformed byte every further call
    /// keeps failing.
    ///
    /// # Errors
    ///
    /// [`TraceError::Malformed`] at the first overlong encoding.
    pub fn scan(&mut self, bytes: &[u8]) -> Result<(), TraceError> {
        if self.malformed {
            return Err(TraceError::Malformed);
        }
        for &byte in bytes {
            let sig = u128::from(byte & 0x7f);
            if varint_bits_overflow(sig, self.shift) {
                self.malformed = true;
                return Err(TraceError::Malformed);
            }
            if byte & 0x80 == 0 {
                self.shift = 0;
                self.records += 1;
            } else {
                self.shift += 7;
            }
        }
        Ok(())
    }

    /// Complete records scanned so far.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// True when the last scanned fragment ended inside a record.
    #[must_use]
    pub fn mid_record(&self) -> bool {
        self.shift != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t: Trace = [
            (0x1000u64, false),
            (0x1040, true),
            (0x0008, false), // backwards jump exercises signed deltas
            (0xdead_beef_0000, true),
            (0xdead_beef_0000, false),
        ]
        .into_iter()
        .collect();
        t.push(Access::load(u64::MAX));
        t
    }

    #[test]
    fn roundtrip_bytes() {
        let t = Trace::from_stream("roundtrip", sample_trace().stream());
        let b = to_bytes(&t);
        let t2 = from_bytes(b).unwrap();
        assert_eq!(t2.name(), "roundtrip");
        assert_eq!(t.accesses(), t2.accesses());
    }

    #[test]
    fn roundtrip_empty() {
        let t = Trace::new("empty");
        let t2 = from_bytes(to_bytes(&t)).unwrap();
        assert_eq!(t2.name(), "empty");
        assert!(t2.is_empty());
    }

    #[test]
    fn roundtrip_via_io() {
        let t = Trace::from_addresses("io", (0..1000u64).map(|i| i * 64));
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let t2 = read_trace(&buf[..]).unwrap();
        assert_eq!(t.accesses(), t2.accesses());
    }

    #[test]
    fn strided_trace_compresses() {
        let t = Trace::from_addresses("s", (0..10_000u64).map(|i| i * 64));
        let b = to_bytes(&t);
        // 64-byte stride zigzags to 128, shifted once more -> 2-byte varints.
        assert!(b.len() < 10_000 * 3, "got {} bytes", b.len());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = from_bytes(&b"NOPE00000000"[..]).unwrap_err();
        assert!(matches!(err, TraceError::BadMagic), "{err}");
    }

    #[test]
    fn bad_version_rejected() {
        let t = Trace::new("v");
        let mut raw = to_bytes(&t).to_vec();
        raw[4] = 99;
        let err = from_bytes(raw).unwrap_err();
        assert!(matches!(err, TraceError::BadVersion(99)), "{err}");
    }

    #[test]
    fn truncation_rejected() {
        let t = Trace::from_addresses("t", [1u64, 2, 3]);
        let raw = to_bytes(&t);
        for cut in 1..raw.len() {
            let sliced = raw.slice(..cut);
            assert!(
                from_bytes(sliced).is_err(),
                "truncation at {cut} must be detected"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let t = Trace::from_addresses("t", [1u64, 2, 3]);
        let mut raw = to_bytes(&t).to_vec();
        raw.push(0x00);
        let err = from_bytes(raw).unwrap_err();
        assert!(matches!(err, TraceError::TrailingData(1)), "{err}");
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn error_display_is_informative() {
        assert!(TraceError::BadMagic.to_string().contains("magic"));
        assert!(TraceError::Truncated.to_string().contains("truncated"));
        assert!(TraceError::Malformed.to_string().contains("malformed"));
        assert!(TraceError::BadVersion(7).to_string().contains('7'));
        assert!(TraceError::TrailingData(3).to_string().contains('3'));
        let e = TraceError::NameTooLong(MAX_NAME_LEN + 1).to_string();
        assert!(e.contains(&MAX_NAME_LEN.to_string()), "{e}");
    }

    /// An overlong varint: 18 continuation bytes reach shift 126, where
    /// only two significant bits still fit; `last` carries more.
    fn overlong_varint(last: u8) -> Vec<u8> {
        let mut bytes = vec![0x81u8; 18];
        bytes.push(last);
        bytes
    }

    #[test]
    fn overlong_varint_rejected_not_silently_truncated() {
        // Pre-fix behavior: the high bits of the 19th byte were shifted
        // out and the varint "decoded" to a wrong value. It must error.
        for last in [0x04u8, 0x7f, 0x84, 0xff] {
            let mut buf = Bytes::from(overlong_varint(last));
            assert!(
                matches!(get_varint(&mut buf), Err(TraceError::Malformed)),
                "last={last:#04x} must be rejected"
            );
        }
        // A 19th byte whose significant bits fit (≤ 2 bits) is legal...
        let mut buf = Bytes::from(overlong_varint(0x03));
        assert!(get_varint(&mut buf).is_ok());
        // ...but a 20th byte never is (shift 133 ≥ 128), even a zero.
        let mut bytes = vec![0x80u8; 19];
        bytes.push(0x00);
        let mut buf = Bytes::from(bytes);
        assert!(matches!(get_varint(&mut buf), Err(TraceError::Malformed)));
    }

    /// A valid single-record trace whose record bytes are replaced by
    /// `record`, with the declared count forced to `declared`.
    fn trace_with_raw_record(record: &[u8], declared: u64) -> Vec<u8> {
        let t = Trace::from_addresses("raw", [1u64]);
        let raw = to_bytes(&t).to_vec();
        let name_len = u32::from_le_bytes([raw[8], raw[9], raw[10], raw[11]]) as usize;
        let count_at = 12 + name_len;
        let mut out = raw[..count_at].to_vec();
        out.extend_from_slice(&declared.to_le_bytes());
        out.extend_from_slice(record);
        out
    }

    #[test]
    fn malformed_record_distinguished_from_truncation_everywhere() {
        let raw = trace_with_raw_record(&overlong_varint(0x7f), 1);
        // one-shot
        assert!(matches!(
            from_bytes(raw.clone()),
            Err(TraceError::Malformed)
        ));
        // scalar streaming: parked error keeps the Malformed kind
        let mut reader = TraceReader::new(raw.clone()).unwrap();
        assert!(matches!(reader.try_next(), Err(TraceError::Malformed)));
        assert!(matches!(reader.try_next(), Err(TraceError::Malformed)));
        assert!(matches!(reader.error(), Some(TraceError::Malformed)));
        assert!(matches!(reader.finish(), Err(TraceError::Malformed)));
        // bulk
        let mut reader = TraceReader::new(raw).unwrap();
        let mut chunk = Chunk::default();
        assert!(matches!(
            reader.decode_chunk(&mut chunk, 16),
            Err(TraceError::Malformed)
        ));
        assert!(matches!(
            reader.decode_chunk(&mut chunk, 16),
            Err(TraceError::Malformed)
        ));
        // short input still reports Truncated, not Malformed
        let cut = trace_with_raw_record(&[0x81], 1);
        assert!(matches!(from_bytes(cut), Err(TraceError::Truncated)));
    }

    #[test]
    fn serializer_rejects_oversized_name() {
        let t = Trace::with_unchecked_name("n".repeat(MAX_NAME_LEN + 1));
        assert!(matches!(
            try_to_bytes(&t),
            Err(TraceError::NameTooLong(n)) if n == MAX_NAME_LEN + 1
        ));
        // The infallible encoder clamps instead, keeping the length
        // field and the payload consistent; the result decodes.
        let raw = to_bytes(&t);
        let t2 = from_bytes(raw).unwrap();
        assert_eq!(t2.name().len(), MAX_NAME_LEN);
        // In-bounds names pass `try_to_bytes` unchanged.
        let ok = Trace::from_addresses("fine", [1u64, 2]);
        assert_eq!(try_to_bytes(&ok).unwrap(), to_bytes(&ok));
    }

    #[test]
    fn decoder_rejects_oversized_name_length() {
        let t = Trace::from_addresses("n", [1u64]);
        let mut raw = to_bytes(&t).to_vec();
        let bad_len = (MAX_NAME_LEN as u32 + 1).to_le_bytes();
        raw[8..12].copy_from_slice(&bad_len);
        assert!(matches!(TraceReader::new(raw), Err(TraceError::Malformed)));
    }

    #[test]
    fn record_scanner_counts_and_detects_overlong() {
        let t = Trace::from_addresses("s", (0..50u64).map(|i| i * 64));
        let raw = to_bytes(&t);
        let name_len = u32::from_le_bytes([raw[8], raw[9], raw[10], raw[11]]) as usize;
        let records = &raw[12 + name_len + 8..];
        // Arbitrary fragmentation: every split point agrees.
        for split in 0..records.len() {
            let mut scanner = RecordScanner::new();
            scanner.scan(&records[..split]).unwrap();
            scanner.scan(&records[split..]).unwrap();
            assert_eq!(scanner.records(), 50);
            assert!(!scanner.mid_record());
        }
        // A fragment ending mid-record is visible, then resolves.
        let mut scanner = RecordScanner::new();
        scanner.scan(&[0x81]).unwrap();
        assert!(scanner.mid_record());
        assert_eq!(scanner.records(), 0);
        scanner.scan(&[0x01]).unwrap();
        assert!(!scanner.mid_record());
        assert_eq!(scanner.records(), 1);
        // Overlong input trips the scanner, which then stays fused.
        let mut scanner = RecordScanner::new();
        assert!(scanner.scan(&overlong_varint(0x7f)).is_err());
        assert!(scanner.scan(&[0x01]).is_err());
    }

    #[test]
    fn zigzag_extremes_roundtrip_through_codec() {
        // i64::MIN/MAX zigzag to the top of the u64 range; with the kind
        // bit the varint record needs more than 64 bits of payload.
        let t: Trace = [
            (0u64, false),
            (u64::MAX, true),             // delta +MAX ≡ -1 as i64
            (0u64, false),                // delta wraps back down
            (i64::MAX as u64, true),      // delta i64::MAX
            (i64::MAX as u64 + 1, false), // net position i64::MIN as u64
        ]
        .into_iter()
        .collect();
        let t2 = from_bytes(to_bytes(&t)).unwrap();
        let a: Vec<_> = t.iter().collect();
        let b: Vec<_> = t2.iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn reader_streams_accesses() {
        let t = sample_trace();
        let raw = to_bytes(&Trace::from_stream("r", t.stream()));
        let mut reader = TraceReader::new(raw).unwrap();
        assert_eq!(reader.name(), "r");
        assert_eq!(reader.declared_len(), t.len() as u64);
        assert_eq!(reader.remaining_hint(), Some(t.len() as u64));
        let mut got = Vec::new();
        while let Some(a) = reader.next_access() {
            got.push(a);
        }
        assert_eq!(got.as_slice(), t.accesses());
        assert_eq!(reader.decoded(), t.len() as u64);
        assert!(reader.error().is_none());
        assert!(reader.finish().is_ok());
    }

    #[test]
    fn reader_parks_truncation_error_for_stream_drivers() {
        let t = Trace::from_addresses("cut", (0..100u64).map(|i| i * 64));
        let raw = to_bytes(&t);
        let cut = raw.slice(..raw.len() - 7);
        let mut reader = TraceReader::new(cut).unwrap();
        let streamed = reader.count_remaining();
        assert!(streamed < 100, "stream must end early, got {streamed}");
        assert!(matches!(reader.error(), Some(TraceError::Truncated)));
        // fused: further pulls keep failing without panicking
        assert!(reader.next_access().is_none());
        assert!(reader.try_next().is_err());
        assert_eq!(reader.remaining_hint(), Some(0));
        assert!(reader.finish().is_err());
    }

    #[test]
    fn reader_finish_detects_unconsumed_records() {
        let t = Trace::from_addresses("partial", [1u64, 2, 3]);
        let mut reader = TraceReader::new(to_bytes(&t)).unwrap();
        assert!(reader.next_access().is_some());
        assert!(matches!(reader.finish(), Err(TraceError::Truncated)));
    }

    #[test]
    fn decode_chunk_bulk_decodes_whole_trace() {
        let t = sample_trace();
        let raw = to_bytes(&Trace::from_stream("bulk", t.stream()));
        let mut reader = TraceReader::new(raw).unwrap();
        let mut chunk = Chunk::default();
        let mut got = Vec::new();
        let mut bases = Vec::new();
        loop {
            let n = reader.decode_chunk(&mut chunk, 4).unwrap();
            if n == 0 {
                break;
            }
            bases.push(chunk.base_index);
            got.extend_from_slice(&chunk.accesses);
        }
        assert_eq!(got.as_slice(), t.accesses());
        assert_eq!(bases, vec![0, 4]);
        assert!(reader.finish().is_ok());
    }

    #[test]
    fn decode_chunk_keeps_prefix_on_truncation_and_fuses() {
        let t = Trace::from_addresses("cut", (0..100u64).map(|i| i * 64));
        let raw = to_bytes(&t);
        let cut = raw.slice(..raw.len() - 7);
        let mut reader = TraceReader::new(cut).unwrap();
        let mut chunk = Chunk::default();
        let err = reader.decode_chunk(&mut chunk, 1 << 16).unwrap_err();
        assert!(matches!(err, TraceError::Truncated));
        assert!(!chunk.is_empty(), "decoded prefix must be preserved");
        assert_eq!(chunk.len() as u64, reader.decoded());
        // fused: the next bulk call fails with a cleared chunk
        assert!(reader.decode_chunk(&mut chunk, 16).is_err());
        assert!(chunk.is_empty());
        assert!(matches!(reader.error(), Some(TraceError::Truncated)));
    }

    #[test]
    fn reader_is_chunk_capable_and_serves_slices() {
        let t = Trace::from_addresses("slices", (0..300u64).map(|i| i * 8));
        let raw = to_bytes(&t);
        let mut reader = TraceReader::new(raw).unwrap().with_chunk_capacity(128);
        assert!(reader.chunk_capable());
        assert_eq!(reader.remaining_hint(), Some(300));
        let mut got = Vec::new();
        let mut lens = Vec::new();
        while let Some(run) = reader.next_chunk() {
            lens.push(run.len());
            got.extend_from_slice(run);
            let n = run.len();
            reader.consume_chunk(n);
        }
        assert_eq!(lens, vec![128, 128, 44]);
        assert_eq!(got.as_slice(), t.accesses());
        assert!(reader.finish().is_ok());
    }

    #[test]
    fn reader_mixed_scalar_and_chunk_reads_preserve_order() {
        let t = Trace::from_addresses("mix", (0..20u64).map(|i| i * 8));
        let mut reader = TraceReader::new(to_bytes(&t))
            .unwrap()
            .with_chunk_capacity(8);
        // chunk, partial consume, scalar reads from the same buffer,
        // then chunks again — the global order must be unbroken.
        let first = reader.next_chunk().expect("first chunk");
        assert_eq!(first.len(), 8);
        reader.consume_chunk(3);
        assert_eq!(reader.next_access().unwrap().addr.raw(), 3 * 8);
        assert_eq!(reader.next_chunk().expect("rest").len(), 4);
        reader.consume_chunk(4);
        let mut rest = Vec::new();
        while let Some(a) = reader.next_access() {
            rest.push(a.addr.raw());
        }
        assert_eq!(rest, (8..20u64).map(|i| i * 8).collect::<Vec<_>>());
        assert!(reader.finish().is_ok());
    }

    #[test]
    fn chunk_api_serves_decoded_prefix_before_parked_error() {
        let t = Trace::from_addresses("cutc", (0..50u64).map(|i| i * 64));
        let raw = to_bytes(&t);
        let cut = raw.slice(..raw.len() - 5);
        let mut reader = TraceReader::new(cut).unwrap();
        let mut streamed = 0u64;
        while let Some(run) = reader.next_chunk() {
            streamed += run.len() as u64;
            let n = run.len();
            reader.consume_chunk(n);
        }
        assert!(streamed < 50, "stream must end early, got {streamed}");
        assert_eq!(streamed, reader.decoded());
        assert!(matches!(reader.error(), Some(TraceError::Truncated)));
        assert!(reader.next_chunk().is_none());
        assert_eq!(reader.remaining_hint(), Some(0));
        assert!(reader.finish().is_err());
    }

    #[test]
    fn absurd_declared_count_does_not_preallocate() {
        // A 30-byte file whose header declares u64::MAX records must
        // fail with a typed error, not abort in a capacity reservation.
        let t = Trace::from_addresses("big", [1u64, 2, 3]);
        let mut raw = to_bytes(&t).to_vec();
        let name_len = u32::from_le_bytes([raw[8], raw[9], raw[10], raw[11]]) as usize;
        let count_at = 12 + name_len;
        raw[count_at..count_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        // one-shot decode
        assert!(matches!(
            from_bytes(raw.clone()),
            Err(TraceError::Truncated)
        ));
        // bulk decode
        let mut reader = TraceReader::new(raw.clone()).unwrap();
        assert_eq!(reader.declared_len(), u64::MAX);
        let mut chunk = Chunk::default();
        assert!(reader.decode_chunk(&mut chunk, usize::MAX).is_err());
        assert_eq!(chunk.len(), 3, "valid prefix records still decode");
        // streaming decode through Trace::from_stream (remaining_hint is
        // absurd; the materializer must clamp its reservation)
        let mut reader = TraceReader::new(raw).unwrap();
        let streamed = Trace::from_stream("clamped", &mut reader);
        assert_eq!(streamed.len(), 3);
        assert!(reader.error().is_some());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The raw u128 varint round-trips over its full width, and
        /// decoding consumes the exact bytes encoding produced.
        #[test]
        fn varint_roundtrip_full_u128(hi in any::<u64>(), lo in any::<u64>()) {
            let v = (u128::from(hi) << 64) | u128::from(lo);
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut bytes = buf.freeze();
            prop_assert_eq!(get_varint(&mut bytes).unwrap(), v);
            prop_assert_eq!(bytes.remaining(), 0);
        }

        /// A truncated varint is always `Truncated`, never a panic or a
        /// bogus value.
        #[test]
        fn varint_truncation_detected(hi in any::<u64>(), lo in any::<u64>()) {
            let v = (u128::from(hi) << 64) | u128::from(lo);
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let full = buf.freeze();
            for cut in 0..full.len() {
                let mut sliced = full.slice(..cut);
                prop_assert!(matches!(
                    get_varint(&mut sliced),
                    Err(TraceError::Truncated)
                ));
            }
        }

        /// Whole-trace round-trip: arbitrary address/kind sequences —
        /// including the empty trace — survive encode/decode exactly.
        #[test]
        fn trace_roundtrip(
            records in prop::collection::vec((any::<u64>(), any::<bool>()), 0..64)
        ) {
            let t: Trace = records.iter().copied().collect();
            let t2 = from_bytes(to_bytes(&t)).unwrap();
            prop_assert_eq!(t.len(), t2.len());
            let a: Vec<_> = t.iter().collect();
            let b: Vec<_> = t2.iter().collect();
            prop_assert_eq!(a, b);
        }

        /// The streaming reader agrees byte-for-byte with the one-shot
        /// decoder when driven purely through the `AccessStream` trait.
        #[test]
        fn reader_stream_matches_from_bytes(
            records in prop::collection::vec((any::<u64>(), any::<bool>()), 0..64)
        ) {
            let t: Trace = records.iter().copied().collect();
            let raw = to_bytes(&t);
            let mut reader = TraceReader::new(raw).unwrap();
            let streamed = Trace::from_stream("s", &mut reader);
            prop_assert!(reader.error().is_none());
            prop_assert_eq!(streamed.accesses(), t.accesses());
            prop_assert!(reader.finish().is_ok());
        }

        /// Deltas near the zigzag extremes (|delta| ≥ 2^62, where the
        /// kind bit overflows the u64 varint into u128) round-trip.
        #[test]
        fn extreme_delta_roundtrip(start in any::<u64>(), jump in any::<u64>()) {
            let t: Trace = [
                (start, false),
                (start.wrapping_add(jump), true),
                (start.wrapping_add(jump).wrapping_add(1 << 62), false),
                (start, true),
            ]
            .into_iter()
            .collect();
            let t2 = from_bytes(to_bytes(&t)).unwrap();
            let a: Vec<_> = t.iter().collect();
            let b: Vec<_> = t2.iter().collect();
            prop_assert_eq!(a, b);
        }

        /// Every prefix of a valid encoding is rejected as an error (the
        /// empty prefix included) — decoding never panics or succeeds on
        /// a cut file.
        #[test]
        fn truncated_trace_always_errors(
            records in prop::collection::vec((any::<u64>(), any::<bool>()), 1..16)
        ) {
            let t: Trace = records.iter().copied().collect();
            let full = to_bytes(&t);
            for cut in 0..full.len() {
                prop_assert!(from_bytes(full.slice(..cut)).is_err());
            }
        }

        /// Cut files through the *stream* layer: the reader either fails
        /// at the header or ends the stream early with a parked error —
        /// never a panic, never a silently complete stream.
        #[test]
        fn truncated_trace_stream_always_errors(
            records in prop::collection::vec((any::<u64>(), any::<bool>()), 1..16)
        ) {
            let t: Trace = records.iter().copied().collect();
            let full = to_bytes(&t);
            for cut in 0..full.len() {
                match TraceReader::new(full.slice(..cut)) {
                    Err(_) => {} // header already invalid
                    Ok(mut reader) => {
                        let n = reader.count_remaining();
                        prop_assert!(
                            n < records.len() as u64 || reader.error().is_some()
                        );
                        prop_assert!(reader.finish().is_err());
                    }
                }
            }
        }

        /// Arbitrary garbage input returns an error without panicking.
        #[test]
        fn corrupt_input_never_panics(
            data in prop::collection::vec(any::<u8>(), 0..256)
        ) {
            // Most random inputs fail the magic check; force a valid
            // header prefix on a second copy so the varint decoder and
            // count field see the garbage too.
            let _ = from_bytes(data.clone());
            let mut framed = to_bytes(&Trace::new("fuzz")).to_vec();
            framed.extend_from_slice(&data);
            let _ = from_bytes(framed);
        }

        /// `decode_chunk` yields the byte-for-byte same access sequence
        /// — and on corrupt input the same first error at the same
        /// decoded offset — as the per-access `try_next` loop, for any
        /// chunk capacity and any truncation point.
        #[test]
        fn decode_chunk_matches_try_next(
            records in prop::collection::vec((any::<u64>(), any::<bool>()), 0..64),
            capacity in 1usize..40,
            cut_back in 0usize..24,
        ) {
            let t: Trace = records.iter().copied().collect();
            let full = to_bytes(&t);
            let cut = full.len().saturating_sub(cut_back).max(20);
            for raw in [full.clone(), full.slice(..cut.min(full.len()))] {
                let Ok(mut scalar) = TraceReader::new(raw.clone()) else { continue };
                let mut want = Vec::new();
                let scalar_err = loop {
                    match scalar.try_next() {
                        Ok(Some(a)) => want.push(a),
                        Ok(None) => break false,
                        Err(_) => break true,
                    }
                };
                let Ok(mut bulk) = TraceReader::new(raw) else { continue };
                let mut got = Vec::new();
                let mut chunk = Chunk::default();
                let bulk_err = loop {
                    match bulk.decode_chunk(&mut chunk, capacity) {
                        Ok(0) => break false,
                        Ok(_) => {
                            prop_assert_eq!(chunk.base_index, got.len() as u64);
                            got.extend_from_slice(&chunk.accesses);
                        }
                        Err(e) => {
                            prop_assert!(matches!(e, TraceError::Truncated));
                            got.extend_from_slice(&chunk.accesses);
                            break true;
                        }
                    }
                };
                prop_assert_eq!(&got, &want);
                prop_assert_eq!(bulk_err, scalar_err);
                prop_assert_eq!(bulk.decoded(), scalar.decoded());
            }
        }

        /// The chunk-API view of the reader (what `Machine::run`'s fast
        /// path consumes) agrees with pure scalar consumption on valid
        /// and truncated inputs alike.
        #[test]
        fn reader_chunk_api_matches_scalar(
            records in prop::collection::vec((any::<u64>(), any::<bool>()), 0..64),
            capacity in 1usize..40,
            cut_back in 0usize..24,
        ) {
            let t: Trace = records.iter().copied().collect();
            let full = to_bytes(&t);
            let cut = full.len().saturating_sub(cut_back).max(20);
            for raw in [full.clone(), full.slice(..cut.min(full.len()))] {
                let Ok(mut scalar) = TraceReader::new(raw.clone()) else { continue };
                let mut want = Vec::new();
                while let Some(a) = scalar.next_access() {
                    want.push(a);
                }
                let Ok(reader) = TraceReader::new(raw) else { continue };
                let mut chunked = reader.with_chunk_capacity(capacity);
                let mut got = Vec::new();
                while let Some(run) = chunked.next_chunk() {
                    prop_assert!(!run.is_empty());
                    got.extend_from_slice(run);
                    let n = run.len();
                    chunked.consume_chunk(n);
                }
                prop_assert_eq!(&got, &want);
                prop_assert_eq!(chunked.error().is_some(), scalar.error().is_some());
                prop_assert_eq!(chunked.decoded(), scalar.decoded());
            }
        }

        /// Every overlong encoding — one whose continuation bytes carry
        /// significant bits past the 128-bit payload — is rejected as
        /// `Malformed` by the scalar decoder, the bulk decoder, and the
        /// incremental scanner alike. (The pre-fix decoders silently
        /// shifted the excess bits out and returned a wrong value.)
        #[test]
        fn overlong_encodings_rejected_by_scalar_and_bulk(
            body in prop::collection::vec(any::<u8>(), 18..19),
            last in 4u8..128,
            continuation in any::<bool>(),
        ) {
            // 18 continuation bytes reach shift 126, where only two
            // significant bits still fit; `last` carries more, as a
            // terminator or as a further continuation byte.
            let mut overlong: Vec<u8> = body.iter().map(|b| b | 0x80).collect();
            overlong.push(if continuation { last | 0x80 } else { last });
            // scalar
            let mut buf = Bytes::from(overlong.clone());
            prop_assert!(matches!(
                get_varint(&mut buf),
                Err(TraceError::Malformed)
            ));
            // incremental scanner
            let mut scanner = RecordScanner::new();
            prop_assert!(matches!(
                scanner.scan(&overlong),
                Err(TraceError::Malformed)
            ));
            // bulk: splice the record into a valid header
            let t = Trace::from_addresses("o", [1u64]);
            let raw = to_bytes(&t).to_vec();
            let name_len =
                u32::from_le_bytes([raw[8], raw[9], raw[10], raw[11]]) as usize;
            let mut framed = raw[..12 + name_len].to_vec();
            framed.extend_from_slice(&1u64.to_le_bytes());
            framed.extend_from_slice(&overlong);
            let mut reader = TraceReader::new(framed).unwrap();
            let mut chunk = Chunk::default();
            prop_assert!(matches!(
                reader.decode_chunk(&mut chunk, 16),
                Err(TraceError::Malformed)
            ));
        }

        /// The incremental `RecordScanner` agrees with the scalar
        /// decoder on arbitrary byte streams at arbitrary split points:
        /// same malformed-vs-clean verdict, same complete-record count.
        #[test]
        fn record_scanner_matches_scalar_decoder(
            data in prop::collection::vec(any::<u8>(), 0..256),
            split in 0usize..256,
        ) {
            // Scalar oracle: decode varints until the bytes run out.
            let mut buf = Bytes::from(data.clone());
            let mut want_records = 0u64;
            let mut want_malformed = false;
            loop {
                if !buf.has_remaining() {
                    break;
                }
                match get_varint(&mut buf) {
                    Ok(_) => want_records += 1,
                    Err(TraceError::Truncated) => break, // partial tail
                    Err(TraceError::Malformed) => {
                        want_malformed = true;
                        break;
                    }
                    Err(e) => prop_assert!(false, "unexpected error {e}"),
                }
            }
            let split = split.min(data.len());
            let mut scanner = RecordScanner::new();
            let got = scanner
                .scan(&data[..split])
                .and_then(|()| scanner.scan(&data[split..]));
            prop_assert_eq!(got.is_err(), want_malformed);
            if !want_malformed {
                prop_assert_eq!(scanner.records(), want_records);
            }
        }

        /// Kernel equivalence at the trait boundary: the SWAR kernel
        /// reproduces the scalar oracle exactly — accesses, committed
        /// cursor, delta-chain state, and truncated-vs-malformed
        /// verdict — on arbitrary byte windows (mostly garbage, so
        /// truncation and overlong cut points of every flavor) and
        /// arbitrary record targets.
        #[test]
        fn swar_kernel_matches_scalar_kernel_on_raw_windows(
            data in prop::collection::vec(any::<u8>(), 0..256),
            target in 0usize..96,
            prev in any::<u64>(),
        ) {
            use crate::kernels::{DecodeKernel, ScalarDecode, SwarDecode};
            let mut scalar_prev = prev;
            let mut scalar_out = Vec::new();
            let scalar = ScalarDecode.decode_records(
                &data, target, &mut scalar_prev, &mut scalar_out);
            let mut swar_prev = prev;
            let mut swar_out = Vec::new();
            let swar = SwarDecode.decode_records(
                &data, target, &mut swar_prev, &mut swar_out);
            prop_assert_eq!(&swar_out, &scalar_out);
            prop_assert_eq!(swar.committed, scalar.committed);
            prop_assert_eq!(swar_prev, scalar_prev);
            let tag = |f: &Option<TraceError>| match f {
                None => 0u8,
                Some(TraceError::Truncated) => 1,
                Some(TraceError::Malformed) => 2,
                Some(_) => 3,
            };
            prop_assert_eq!(tag(&swar.failure), tag(&scalar.failure));
        }

        /// Kernel equivalence at the reader boundary: a reader forced
        /// to each kernel decodes the byte-for-byte same chunks, errors
        /// and counts, over records of every varint width (arbitrary
        /// u64 deltas reach 10-byte records; small strides stay at
        /// 1–2), every chunk capacity, and every truncation cut.
        #[test]
        fn decode_chunk_kernels_agree_across_widths_and_cuts(
            records in prop::collection::vec(
                (prop_oneof![0u64..2048, any::<u64>()], any::<bool>()), 0..64),
            capacity in 1usize..40,
            cut_back in 0usize..24,
        ) {
            let t: Trace = records.iter().copied().collect();
            let full = to_bytes(&t);
            let cut = full.len().saturating_sub(cut_back).max(20);
            for raw in [full.clone(), full.slice(..cut.min(full.len()))] {
                let Ok(scalar) = TraceReader::new(raw.clone()) else { continue };
                let Ok(swar) = TraceReader::new(raw) else { continue };
                let mut scalar = scalar.with_kernel(KernelChoice::Scalar);
                let mut swar = swar.with_kernel(KernelChoice::Swar);
                prop_assert_eq!(scalar.kernel(), KernelKind::Scalar);
                prop_assert_eq!(swar.kernel(), KernelKind::Swar);
                let mut sc = Chunk::default();
                let mut sw = Chunk::default();
                loop {
                    let a = scalar.decode_chunk(&mut sc, capacity);
                    let b = swar.decode_chunk(&mut sw, capacity);
                    prop_assert_eq!(&sw.accesses, &sc.accesses);
                    prop_assert_eq!(sw.base_index, sc.base_index);
                    prop_assert_eq!(swar.decoded(), scalar.decoded());
                    match (a, b) {
                        (Ok(0), Ok(0)) => break,
                        (Ok(n), Ok(m)) => prop_assert_eq!(n, m),
                        (Err(ea), Err(eb)) => {
                            prop_assert_eq!(
                                matches!(ea, TraceError::Malformed),
                                matches!(eb, TraceError::Malformed)
                            );
                            break;
                        }
                        (a, b) => prop_assert!(
                            false, "kernels disagree: {a:?} vs {b:?}"),
                    }
                }
            }
        }

        /// Arbitrary garbage through the *stream* layer: header parsing
        /// and record streaming never panic, and a stream that ends
        /// before its declared count always parks an error.
        #[test]
        fn corrupt_input_never_panics_streaming(
            data in prop::collection::vec(any::<u8>(), 0..256)
        ) {
            for bytes in [data.clone(), {
                let mut framed = to_bytes(&Trace::new("fuzz")).to_vec();
                framed.extend_from_slice(&data);
                framed
            }] {
                if let Ok(mut reader) = TraceReader::new(bytes) {
                    let streamed = reader.count_remaining();
                    prop_assert_eq!(reader.decoded(), streamed);
                    if streamed < reader.declared_len() {
                        prop_assert!(reader.error().is_some());
                    }
                }
            }
        }
    }
}
