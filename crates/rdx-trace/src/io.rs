//! Binary trace serialization.
//!
//! Format (`RDXT` version 1), little-endian throughout:
//!
//! ```text
//! magic    [u8; 4]  = b"RDXT"
//! version  u32      = 1
//! name_len u32
//! name     [u8; name_len] (UTF-8)
//! count    u64
//! records  count × record
//! ```
//!
//! Each record is a LEB128-style varint of `zigzag(addr_delta) << 1 | kind`,
//! where `addr_delta` is the signed difference from the previous address.
//! Regular strides compress to 1–2 bytes per access, which matters for
//! multi-hundred-million access traces.

use crate::event::{Access, AccessKind, Address};
use crate::trace::Trace;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"RDXT";
const VERSION: u32 = 1;

/// Errors produced by trace (de)serialization.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input does not start with the `RDXT` magic.
    BadMagic,
    /// The input has an unsupported format version.
    BadVersion(u32),
    /// The input ended before the declared record count was read, or a
    /// varint was malformed.
    Truncated,
    /// The embedded name is not valid UTF-8.
    BadName,
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceIoError::BadMagic => write!(f, "not a trace file (bad magic)"),
            TraceIoError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceIoError::Truncated => write!(f, "trace file truncated or corrupt"),
            TraceIoError::BadName => write!(f, "trace name is not valid utf-8"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_varint(buf: &mut BytesMut, mut v: u128) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> Result<u128, TraceIoError> {
    let mut v = 0u128;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(TraceIoError::Truncated);
        }
        let byte = buf.get_u8();
        if shift >= 128 {
            return Err(TraceIoError::Truncated);
        }
        v |= u128::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Serializes a trace into bytes.
#[must_use]
pub fn to_bytes(trace: &Trace) -> Bytes {
    let mut buf = BytesMut::with_capacity(trace.len() * 2 + 64);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    let name = trace.name().as_bytes();
    buf.put_u32_le(name.len() as u32);
    buf.put_slice(name);
    buf.put_u64_le(trace.len() as u64);
    let mut prev: u64 = 0;
    for a in trace.iter() {
        let delta = a.addr.raw().wrapping_sub(prev) as i64;
        prev = a.addr.raw();
        let kind_bit = u128::from(a.kind.is_store());
        // The zigzagged delta needs the full 64 bits for |delta| ≥ 2^62,
        // so the kind bit pushes the record into u128 varint territory.
        put_varint(&mut buf, (u128::from(zigzag(delta)) << 1) | kind_bit);
    }
    buf.freeze()
}

/// Deserializes a trace from bytes.
///
/// # Errors
///
/// Returns a [`TraceIoError`] if the input is not a valid version-1 trace.
pub fn from_bytes(bytes: impl Into<Bytes>) -> Result<Trace, TraceIoError> {
    let mut buf: Bytes = bytes.into();
    if buf.remaining() < 4 || &buf.copy_to_bytes(4)[..] != MAGIC {
        return Err(TraceIoError::BadMagic);
    }
    if buf.remaining() < 4 {
        return Err(TraceIoError::Truncated);
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(TraceIoError::BadVersion(version));
    }
    if buf.remaining() < 4 {
        return Err(TraceIoError::Truncated);
    }
    let name_len = buf.get_u32_le() as usize;
    if buf.remaining() < name_len {
        return Err(TraceIoError::Truncated);
    }
    let name = String::from_utf8(buf.copy_to_bytes(name_len).to_vec())
        .map_err(|_| TraceIoError::BadName)?;
    if buf.remaining() < 8 {
        return Err(TraceIoError::Truncated);
    }
    let count = buf.get_u64_le();
    let mut trace = Trace::new(name);
    let mut prev: u64 = 0;
    for _ in 0..count {
        let raw = get_varint(&mut buf)?;
        let kind = if raw & 1 == 1 {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        let delta = unzigzag((raw >> 1) as u64);
        let addr = prev.wrapping_add(delta as u64);
        prev = addr;
        trace.push(Access {
            addr: Address::new(addr),
            kind,
        });
    }
    Ok(trace)
}

/// Writes a trace to any [`Write`] sink (a `&mut W` also works).
///
/// # Errors
///
/// Propagates I/O errors from the sink.
pub fn write_trace<W: Write>(mut writer: W, trace: &Trace) -> Result<(), TraceIoError> {
    writer.write_all(&to_bytes(trace))?;
    Ok(())
}

/// Reads a trace from any [`Read`] source (a `&mut R` also works).
///
/// # Errors
///
/// Propagates I/O errors and format errors.
pub fn read_trace<R: Read>(mut reader: R) -> Result<Trace, TraceIoError> {
    let mut data = Vec::new();
    reader.read_to_end(&mut data)?;
    from_bytes(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t: Trace = [
            (0x1000u64, false),
            (0x1040, true),
            (0x0008, false), // backwards jump exercises signed deltas
            (0xdead_beef_0000, true),
            (0xdead_beef_0000, false),
        ]
        .into_iter()
        .collect();
        t.push(Access::load(u64::MAX));
        t
    }

    #[test]
    fn roundtrip_bytes() {
        let t = Trace::from_stream("roundtrip", sample_trace().stream());
        let b = to_bytes(&t);
        let t2 = from_bytes(b).unwrap();
        assert_eq!(t2.name(), "roundtrip");
        assert_eq!(t.accesses(), t2.accesses());
    }

    #[test]
    fn roundtrip_empty() {
        let t = Trace::new("empty");
        let t2 = from_bytes(to_bytes(&t)).unwrap();
        assert_eq!(t2.name(), "empty");
        assert!(t2.is_empty());
    }

    #[test]
    fn roundtrip_via_io() {
        let t = Trace::from_addresses("io", (0..1000u64).map(|i| i * 64));
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let t2 = read_trace(&buf[..]).unwrap();
        assert_eq!(t.accesses(), t2.accesses());
    }

    #[test]
    fn strided_trace_compresses() {
        let t = Trace::from_addresses("s", (0..10_000u64).map(|i| i * 64));
        let b = to_bytes(&t);
        // 64-byte stride zigzags to 128, shifted once more -> 2-byte varints.
        assert!(b.len() < 10_000 * 3, "got {} bytes", b.len());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = from_bytes(&b"NOPE00000000"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadMagic), "{err}");
    }

    #[test]
    fn bad_version_rejected() {
        let t = Trace::new("v");
        let mut raw = to_bytes(&t).to_vec();
        raw[4] = 99;
        let err = from_bytes(raw).unwrap_err();
        assert!(matches!(err, TraceIoError::BadVersion(99)), "{err}");
    }

    #[test]
    fn truncation_rejected() {
        let t = Trace::from_addresses("t", [1u64, 2, 3]);
        let raw = to_bytes(&t);
        for cut in 1..raw.len() {
            let sliced = raw.slice(..cut);
            assert!(
                from_bytes(sliced).is_err(),
                "truncation at {cut} must be detected"
            );
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn error_display_is_informative() {
        assert!(TraceIoError::BadMagic.to_string().contains("magic"));
        assert!(TraceIoError::Truncated.to_string().contains("truncated"));
        assert!(TraceIoError::BadVersion(7).to_string().contains('7'));
    }

    #[test]
    fn zigzag_extremes_roundtrip_through_codec() {
        // i64::MIN/MAX zigzag to the top of the u64 range; with the kind
        // bit the varint record needs more than 64 bits of payload.
        let t: Trace = [
            (0u64, false),
            (u64::MAX, true),             // delta +MAX ≡ -1 as i64
            (0u64, false),                // delta wraps back down
            (i64::MAX as u64, true),      // delta i64::MAX
            (i64::MAX as u64 + 1, false), // net position i64::MIN as u64
        ]
        .into_iter()
        .collect();
        let t2 = from_bytes(to_bytes(&t)).unwrap();
        let a: Vec<_> = t.iter().collect();
        let b: Vec<_> = t2.iter().collect();
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The raw u128 varint round-trips over its full width, and
        /// decoding consumes the exact bytes encoding produced.
        #[test]
        fn varint_roundtrip_full_u128(hi in any::<u64>(), lo in any::<u64>()) {
            let v = (u128::from(hi) << 64) | u128::from(lo);
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut bytes = buf.freeze();
            prop_assert_eq!(get_varint(&mut bytes).unwrap(), v);
            prop_assert_eq!(bytes.remaining(), 0);
        }

        /// A truncated varint is always `Truncated`, never a panic or a
        /// bogus value.
        #[test]
        fn varint_truncation_detected(hi in any::<u64>(), lo in any::<u64>()) {
            let v = (u128::from(hi) << 64) | u128::from(lo);
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let full = buf.freeze();
            for cut in 0..full.len() {
                let mut sliced = full.slice(..cut);
                prop_assert!(matches!(
                    get_varint(&mut sliced),
                    Err(TraceIoError::Truncated)
                ));
            }
        }

        /// Whole-trace round-trip: arbitrary address/kind sequences —
        /// including the empty trace — survive encode/decode exactly.
        #[test]
        fn trace_roundtrip(
            records in prop::collection::vec((any::<u64>(), any::<bool>()), 0..64)
        ) {
            let t: Trace = records.iter().copied().collect();
            let t2 = from_bytes(to_bytes(&t)).unwrap();
            prop_assert_eq!(t.len(), t2.len());
            let a: Vec<_> = t.iter().collect();
            let b: Vec<_> = t2.iter().collect();
            prop_assert_eq!(a, b);
        }

        /// Deltas near the zigzag extremes (|delta| ≥ 2^62, where the
        /// kind bit overflows the u64 varint into u128) round-trip.
        #[test]
        fn extreme_delta_roundtrip(start in any::<u64>(), jump in any::<u64>()) {
            let t: Trace = [
                (start, false),
                (start.wrapping_add(jump), true),
                (start.wrapping_add(jump).wrapping_add(1 << 62), false),
                (start, true),
            ]
            .into_iter()
            .collect();
            let t2 = from_bytes(to_bytes(&t)).unwrap();
            let a: Vec<_> = t.iter().collect();
            let b: Vec<_> = t2.iter().collect();
            prop_assert_eq!(a, b);
        }

        /// Every prefix of a valid encoding is rejected as an error (the
        /// empty prefix included) — decoding never panics or succeeds on
        /// a cut file.
        #[test]
        fn truncated_trace_always_errors(
            records in prop::collection::vec((any::<u64>(), any::<bool>()), 1..16)
        ) {
            let t: Trace = records.iter().copied().collect();
            let full = to_bytes(&t);
            for cut in 0..full.len() {
                prop_assert!(from_bytes(full.slice(..cut)).is_err());
            }
        }

        /// Arbitrary garbage input returns an error without panicking.
        #[test]
        fn corrupt_input_never_panics(
            data in prop::collection::vec(any::<u8>(), 0..256)
        ) {
            // Most random inputs fail the magic check; force a valid
            // header prefix on a second copy so the varint decoder and
            // count field see the garbage too.
            let _ = from_bytes(data.clone());
            let mut framed = to_bytes(&Trace::new("fuzz")).to_vec();
            framed.extend_from_slice(&data);
            let _ = from_bytes(framed);
        }
    }
}
