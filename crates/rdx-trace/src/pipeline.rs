//! Decode-ahead pipelining: RDXT decoding on a dedicated thread.
//!
//! [`PipelinedReader`] moves the varint decode work of a [`TraceReader`]
//! off the consumer's thread. A small ring of [`Chunk`] buffers
//! circulates between the decoder thread and the consumer over a pair of
//! bounded channels:
//!
//! ```text
//!   consumer ── empty buffers ──▶ decoder thread
//!      ▲                             │ TraceReader::decode_chunk
//!      └──── decoded chunks ◀────────┘
//! ```
//!
//! The ring bounds memory (at most `depth` chunks are ever in flight)
//! and provides backpressure in both directions: the decoder blocks when
//! the consumer falls behind (no recycled buffer available), the
//! consumer blocks when the decoder falls behind (no decoded chunk
//! available yet — counted as `rdx.trace.decode.stalls`).
//!
//! Error and panic semantics mirror the rest of the stack:
//!
//! * Corrupt input is recovered at chunk granularity exactly like
//!   [`TraceReader`]: the decoded prefix of a bad chunk is still
//!   delivered, then the stream ends with the typed [`TraceError`]
//!   parked for [`PipelinedReader::error`] / [`finish`] to report.
//! * A panic on the decoder thread is re-raised on the consumer thread
//!   (like `profile_batch` re-raises worker panics in task order — there
//!   is a single decode task, so "task order" is simply "as soon as the
//!   consumer notices").

use crate::chunk::{Chunk, DEFAULT_CHUNK_CAPACITY};
use crate::event::Access;
use crate::io::{TraceError, TraceReader};
use crate::stream::AccessStream;
use std::fmt;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError};
use std::thread;

/// Tuning knobs for [`PipelinedReader`].
#[derive(Debug, Clone, Copy)]
pub struct PipelineOptions {
    /// Accesses decoded per chunk buffer
    /// (default [`DEFAULT_CHUNK_CAPACITY`], clamped to ≥ 1).
    pub chunk_capacity: usize,
    /// Chunk buffers circulating between decoder and consumer — the
    /// decode-ahead depth (default 2 = double buffering, clamped to ≥ 2).
    pub depth: usize,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            chunk_capacity: DEFAULT_CHUNK_CAPACITY,
            depth: 2,
        }
    }
}

impl PipelineOptions {
    /// Sets the per-chunk access capacity.
    #[must_use]
    pub fn with_chunk_capacity(mut self, capacity: usize) -> Self {
        self.chunk_capacity = capacity;
        self
    }

    /// Sets the decode-ahead depth (number of ring buffers).
    #[must_use]
    pub fn with_depth(mut self, depth: usize) -> Self {
        self.depth = depth;
        self
    }
}

/// What the decoder thread sends back to the consumer.
enum Msg {
    /// A decoded, non-empty chunk.
    Chunk(Chunk),
    /// The stream is over; `result` is [`TraceReader::finish`]'s verdict.
    End(Result<(), TraceError>),
}

/// Decoder-thread main loop: recycle a buffer, fill it, ship it.
fn run_decoder(
    mut reader: TraceReader,
    capacity: usize,
    ring: Receiver<Chunk>,
    out: SyncSender<Msg>,
) {
    loop {
        // Blocking on a recycled buffer is the backpressure bound: with
        // the consumer holding the rest of the ring, the decoder cannot
        // run further than `depth` chunks ahead.
        let Ok(mut chunk) = ring.recv() else {
            return; // consumer hung up
        };
        match reader.decode_chunk(&mut chunk, capacity) {
            Ok(0) => {
                let _ = out.send(Msg::End(reader.finish()));
                return;
            }
            Ok(_) => {
                if out.send(Msg::Chunk(chunk)).is_err() {
                    return; // consumer hung up
                }
            }
            Err(_) => {
                // Chunk-granularity recovery: the valid prefix still
                // flows downstream, then the parked error is reported.
                if !chunk.is_empty() && out.send(Msg::Chunk(chunk)).is_err() {
                    return;
                }
                let _ = out.send(Msg::End(reader.finish()));
                return;
            }
        }
    }
}

/// A [`TraceReader`] whose decoding runs ahead on a dedicated thread.
///
/// Implements the full [`AccessStream`] chunk API
/// (`next_chunk`/`consume_chunk`/`chunk_capable`), so `Machine::run`'s
/// bulk scanner consumes it exactly like an in-memory stream while the
/// next chunk decodes concurrently.
///
/// Dropping the reader mid-stream hangs up both channels and joins the
/// decoder; a decoder panic is re-raised on the consumer thread by the
/// first call that notices it (or by `drop`, unless already panicking).
pub struct PipelinedReader {
    name: String,
    declared: u64,
    ring: Option<SyncSender<Chunk>>,
    data: Option<Receiver<Msg>>,
    worker: Option<thread::JoinHandle<()>>,
    current: Chunk,
    pos: usize,
    delivered: u64,
    done: Option<Result<(), TraceError>>,
}

impl fmt::Debug for PipelinedReader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PipelinedReader")
            .field("name", &self.name)
            .field("declared", &self.declared)
            .field("delivered", &self.delivered)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

/// Outcome of one pull from the data channel.
enum Pull {
    Msg(Msg),
    Dead,
}

impl PipelinedReader {
    /// Pipelines `reader` with default [`PipelineOptions`].
    #[must_use]
    pub fn new(reader: TraceReader) -> Self {
        Self::with_options(reader, PipelineOptions::default())
    }

    /// Pipelines `reader` with explicit options.
    #[must_use]
    pub fn with_options(reader: TraceReader, opts: PipelineOptions) -> Self {
        let name = reader.name().to_owned();
        let declared = reader.declared_len();
        let capacity = opts.chunk_capacity.max(1);
        let depth = opts.depth.max(2);
        let (ring_tx, ring_rx) = sync_channel::<Chunk>(depth);
        // `depth` in-flight chunks plus the final `End` message: sends
        // on the data channel can never block, so `drop` cannot
        // deadlock against a decoder stuck in `send`.
        let (data_tx, data_rx) = sync_channel::<Msg>(depth + 1);
        for _ in 0..depth {
            let _ = ring_tx.send(Chunk::default());
        }
        let spawned = thread::Builder::new()
            .name("rdxt-decode".into())
            .spawn(move || run_decoder(reader, capacity, ring_rx, data_tx));
        let (worker, done) = match spawned {
            Ok(handle) => (Some(handle), None),
            // Spawn failure (resource exhaustion): surface it as a
            // typed error instead of panicking.
            Err(e) => (None, Some(Err(TraceError::Io(e)))),
        };
        PipelinedReader {
            name,
            declared,
            ring: Some(ring_tx),
            data: Some(data_rx),
            worker,
            current: Chunk::default(),
            pos: 0,
            delivered: 0,
            done,
        }
    }

    /// The trace's embedded name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The record count declared in the trace header.
    #[must_use]
    pub fn declared_len(&self) -> u64 {
        self.declared
    }

    /// Accesses handed to the consumer so far.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// The decode error the stream ended with, if any. Only meaningful
    /// once the stream has ended (`next_access`/`next_chunk` returned
    /// `None`).
    #[must_use]
    pub fn error(&self) -> Option<&TraceError> {
        self.done.as_ref().and_then(|r| r.as_ref().err())
    }

    /// Accesses buffered in the current chunk, not yet handed out.
    fn buffered(&self) -> usize {
        self.current.len() - self.pos
    }

    /// Ensures the current chunk has unconsumed accesses; `false` once
    /// the stream is over (clean EOF, decode error, or dead decoder).
    fn advance(&mut self) -> bool {
        loop {
            if self.pos < self.current.len() {
                return true;
            }
            if self.done.is_some() {
                return false;
            }
            // Hand the drained buffer back to the decoder for reuse.
            if self.current.accesses.capacity() > 0 {
                let buf = std::mem::take(&mut self.current);
                let recycled = self
                    .ring
                    .as_ref()
                    .is_some_and(|ring| ring.try_send(buf).is_ok());
                if recycled {
                    rdx_metrics::counter("rdx.trace.decode.recycled_buffers").incr();
                }
            } else {
                self.current = Chunk::default();
            }
            self.pos = 0;
            let pull = match &self.data {
                None => Pull::Dead,
                Some(rx) => match rx.try_recv() {
                    Ok(msg) => Pull::Msg(msg),
                    Err(TryRecvError::Empty) => {
                        // The decoder hasn't kept up; block for it.
                        rdx_metrics::counter("rdx.trace.decode.stalls").incr();
                        match rx.recv() {
                            Ok(msg) => Pull::Msg(msg),
                            Err(_) => Pull::Dead,
                        }
                    }
                    Err(TryRecvError::Disconnected) => Pull::Dead,
                },
            };
            match pull {
                Pull::Msg(Msg::Chunk(chunk)) => {
                    self.current = chunk;
                    self.pos = 0;
                }
                Pull::Msg(Msg::End(result)) => {
                    self.done = Some(result);
                    self.hang_up();
                }
                Pull::Dead => self.reap_worker(),
            }
        }
    }

    /// Drops both channel ends so the decoder (if still alive) exits.
    fn hang_up(&mut self) {
        self.ring = None;
        self.data = None;
    }

    /// The data channel died without an `End` message: the decoder
    /// thread is gone. Re-raise its panic on this thread; a non-panic
    /// exit without a verdict cannot happen in practice, but degrade to
    /// a typed error rather than trusting that.
    fn reap_worker(&mut self) {
        self.hang_up();
        if let Some(handle) = self.worker.take() {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
        if self.done.is_none() {
            self.done = Some(Err(TraceError::Truncated));
        }
    }

    /// Drains the rest of the stream and reports the decoder's verdict:
    /// `Ok(())` only if the whole input decoded cleanly and exactly
    /// (same contract as [`TraceReader::finish`]).
    ///
    /// # Errors
    ///
    /// The [`TraceError`] the decode ended with, if any.
    pub fn finish(mut self) -> Result<(), TraceError> {
        while self.advance() {
            let n = self.buffered();
            self.consume_chunk(n);
        }
        match self.done.take() {
            Some(result) => result,
            None => Err(TraceError::Truncated),
        }
    }
}

impl AccessStream for PipelinedReader {
    fn next_access(&mut self) -> Option<Access> {
        if !self.advance() {
            return None;
        }
        let access = self.current.accesses.get(self.pos).copied();
        if access.is_some() {
            self.pos += 1;
            self.delivered += 1;
        }
        access
    }

    fn remaining_hint(&self) -> Option<u64> {
        if self.done.is_some() {
            return Some(self.buffered() as u64);
        }
        Some(self.declared.saturating_sub(self.delivered))
    }

    fn chunk_capable(&self) -> bool {
        true
    }

    fn next_chunk(&mut self) -> Option<&[Access]> {
        if !self.advance() {
            return None;
        }
        self.current.accesses.get(self.pos..)
    }

    fn consume_chunk(&mut self, n: usize) {
        debug_assert!(n <= self.buffered());
        let taken = n.min(self.buffered());
        self.pos += taken;
        self.delivered += taken as u64;
    }
}

impl Drop for PipelinedReader {
    fn drop(&mut self) {
        self.hang_up();
        if let Some(handle) = self.worker.take() {
            if let Err(payload) = handle.join() {
                // Propagate a decoder panic from `drop` too, unless this
                // thread is already unwinding (double panic aborts).
                if !thread::panicking() {
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

#[cfg(test)]
impl PipelinedReader {
    /// Test-only: a reader whose decoder thread panics immediately,
    /// for pinning the panic-propagation contract.
    fn with_poisoned_worker() -> Self {
        let (ring_tx, ring_rx) = sync_channel::<Chunk>(1);
        let (data_tx, data_rx) = sync_channel::<Msg>(1);
        let worker = thread::Builder::new()
            .name("rdxt-decode-poisoned".into())
            .spawn(move || {
                let _keep_alive = (ring_rx, data_tx);
                panic!("injected decoder panic");
            })
            .expect("spawn test worker");
        PipelinedReader {
            name: "poisoned".into(),
            declared: 1,
            ring: Some(ring_tx),
            data: Some(data_rx),
            worker: Some(worker),
            current: Chunk::default(),
            pos: 0,
            delivered: 0,
            done: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::to_bytes;
    use crate::trace::Trace;

    fn reader_for(trace: &Trace) -> TraceReader {
        TraceReader::new(to_bytes(trace)).expect("valid header")
    }

    #[test]
    fn pipelined_matches_trace_exactly() {
        let t = Trace::from_addresses("p", (0..10_000u64).map(|i| (i * 67) % 4096));
        let opts = PipelineOptions::default().with_chunk_capacity(256);
        let mut piped = PipelinedReader::with_options(reader_for(&t), opts);
        assert!(piped.chunk_capable());
        assert_eq!(piped.name(), "p");
        assert_eq!(piped.declared_len(), 10_000);
        let mut got = Vec::new();
        while let Some(run) = piped.next_chunk() {
            assert!(!run.is_empty());
            got.extend_from_slice(run);
            let n = run.len();
            piped.consume_chunk(n);
        }
        assert_eq!(got.as_slice(), t.accesses());
        assert_eq!(piped.delivered(), 10_000);
        assert!(piped.error().is_none());
        assert!(piped.finish().is_ok());
    }

    #[test]
    fn pipelined_scalar_consumption_works() {
        let t = Trace::from_addresses("s", (0..500u64).map(|i| i * 64));
        let opts = PipelineOptions::default()
            .with_chunk_capacity(64)
            .with_depth(3);
        let mut piped = PipelinedReader::with_options(reader_for(&t), opts);
        let mut got = Vec::new();
        while let Some(a) = piped.next_access() {
            got.push(a);
        }
        assert_eq!(got.as_slice(), t.accesses());
        assert!(piped.finish().is_ok());
    }

    #[test]
    fn empty_trace_ends_immediately() {
        let t = Trace::new("empty");
        let mut piped = PipelinedReader::new(reader_for(&t));
        assert!(piped.next_chunk().is_none());
        assert!(piped.next_access().is_none());
        assert_eq!(piped.remaining_hint(), Some(0));
        assert!(piped.finish().is_ok());
    }

    #[test]
    fn truncated_input_delivers_prefix_then_error() {
        let t = Trace::from_addresses("cut", (0..1000u64).map(|i| i * 64));
        let raw = to_bytes(&t);
        let cut = raw.slice(..raw.len() - 9);
        let reader = TraceReader::new(cut).expect("header intact");
        let opts = PipelineOptions::default().with_chunk_capacity(128);
        let mut piped = PipelinedReader::with_options(reader, opts);
        let streamed = piped.count_remaining();
        assert!(streamed < 1000, "must end early, got {streamed}");
        assert!(matches!(piped.error(), Some(TraceError::Truncated)));
        assert!(matches!(piped.finish(), Err(TraceError::Truncated)));
    }

    #[test]
    fn trailing_data_reported_by_finish() {
        let t = Trace::from_addresses("trail", [1u64, 2, 3]);
        let mut raw = to_bytes(&t).to_vec();
        raw.extend_from_slice(&[0x00, 0x00]);
        let reader = TraceReader::new(raw).expect("header intact");
        let mut piped = PipelinedReader::new(reader);
        assert_eq!(piped.count_remaining(), 3);
        assert!(matches!(piped.finish(), Err(TraceError::TrailingData(2))));
    }

    #[test]
    fn finish_without_consuming_drains_decoder() {
        let t = Trace::from_addresses("drain", (0..5000u64).map(|i| i * 8));
        let piped = PipelinedReader::with_options(
            reader_for(&t),
            PipelineOptions::default().with_chunk_capacity(64),
        );
        assert!(piped.finish().is_ok());
    }

    #[test]
    fn drop_mid_stream_does_not_hang() {
        let t = Trace::from_addresses("drop", (0..50_000u64).map(|i| i * 8));
        let opts = PipelineOptions::default()
            .with_chunk_capacity(128)
            .with_depth(2);
        let mut piped = PipelinedReader::with_options(reader_for(&t), opts);
        assert!(piped.next_access().is_some());
        drop(piped); // decoder blocked on the ring must exit cleanly
    }

    #[test]
    fn decoder_panic_is_reraised_on_consumer() {
        let caught = std::panic::catch_unwind(|| {
            let mut piped = PipelinedReader::with_poisoned_worker();
            let _ = piped.next_access();
        })
        .expect_err("decoder panic must propagate");
        let msg = caught
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| caught.downcast_ref::<String>().cloned());
        assert_eq!(msg.as_deref(), Some("injected decoder panic"));
    }

    #[test]
    fn depth_bounds_buffers_in_flight() {
        // A depth-2 ring over a big trace: the consumer never sees more
        // than the ring capacity ahead of what it consumed. (Indirect:
        // the stream completes with bounded buffers and exact content.)
        let t = Trace::from_addresses("bound", (0..40_000u64).map(|i| i * 16));
        let opts = PipelineOptions::default()
            .with_chunk_capacity(512)
            .with_depth(2);
        let mut piped = PipelinedReader::with_options(reader_for(&t), opts);
        let mut max_run = 0usize;
        let mut total = 0u64;
        while let Some(run) = piped.next_chunk() {
            max_run = max_run.max(run.len());
            total += run.len() as u64;
            let n = run.len();
            piped.consume_chunk(n);
        }
        assert_eq!(total, 40_000);
        assert!(max_run <= 512, "chunk capacity exceeded: {max_run}");
        assert!(piped.finish().is_ok());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::io::to_bytes;
    use crate::trace::Trace;
    use proptest::prelude::*;

    proptest! {
        // Thread-spawning cases are costly; keep the case count modest.
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The pipelined reader produces the byte-for-byte same access
        /// sequence — and on corrupt input the same first error after
        /// the same delivered prefix — as the per-access `try_next`
        /// loop, for arbitrary capacities, depths and truncations.
        #[test]
        fn pipelined_matches_try_next(
            records in prop::collection::vec((any::<u64>(), any::<bool>()), 0..128),
            capacity in 1usize..48,
            depth in 2usize..5,
            cut_back in 0usize..24,
        ) {
            let t: Trace = records.iter().copied().collect();
            let full = to_bytes(&t);
            let cut = full.len().saturating_sub(cut_back).max(20);
            for raw in [full.clone(), full.slice(..cut.min(full.len()))] {
                let Ok(mut scalar) = TraceReader::new(raw.clone()) else { continue };
                let mut want = Vec::new();
                while let Some(a) = scalar.next_access() {
                    want.push(a);
                }
                let Ok(reader) = TraceReader::new(raw) else { continue };
                let opts = PipelineOptions::default()
                    .with_chunk_capacity(capacity)
                    .with_depth(depth);
                let mut piped = PipelinedReader::with_options(reader, opts);
                let mut got = Vec::new();
                while let Some(run) = piped.next_chunk() {
                    prop_assert!(!run.is_empty());
                    got.extend_from_slice(run);
                    let n = run.len();
                    piped.consume_chunk(n);
                }
                prop_assert_eq!(&got, &want);
                prop_assert_eq!(piped.delivered(), scalar.decoded());
                match scalar.error() {
                    None => prop_assert!(piped.error().is_none()),
                    Some(TraceError::Truncated) => prop_assert!(
                        matches!(piped.error(), Some(TraceError::Truncated))
                    ),
                    Some(other) => prop_assert!(false, "unexpected scalar error {other}"),
                }
                let scalar_finish = scalar.finish();
                let piped_finish = piped.finish();
                prop_assert_eq!(scalar_finish.is_ok(), piped_finish.is_ok());
            }
        }
    }
}
