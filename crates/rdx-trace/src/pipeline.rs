//! Decode-ahead pipelining: RDXT decoding on a dedicated thread.
//!
//! [`PipelinedReader`] moves the varint decode work of a [`TraceReader`]
//! off the consumer's thread. A small ring of [`Chunk`] buffers
//! circulates between the decoder thread and the consumer over a pair of
//! bounded channels:
//!
//! ```text
//!   consumer ── empty buffers ──▶ decoder thread
//!      ▲                             │ TraceReader::decode_chunk
//!      └──── decoded chunks ◀────────┘
//! ```
//!
//! The ring bounds memory (at most `depth` chunks are ever in flight)
//! and provides backpressure in both directions: the decoder blocks when
//! the consumer falls behind (no recycled buffer available), the
//! consumer blocks when the decoder falls behind (no decoded chunk
//! available yet — counted as `rdx.trace.decode.stalls`).
//!
//! The decode loop itself is a step machine, not a thread: one
//! [`DecoderTask::step`] turns one recycled buffer into one
//! [`DecodeTurn`]. The production path loops it on the `rdxt-decode`
//! thread ([`run_decoder`]); the deterministic simulator (`rdx-sim`)
//! single-steps the same task over virtual queues through a
//! [`VirtualLink`], so every interleaving the real threads could produce
//! can be replayed on one thread under a seeded schedule.
//!
//! Error and panic semantics mirror the rest of the stack:
//!
//! * Corrupt input is recovered at chunk granularity exactly like
//!   [`TraceReader`]: the decoded prefix of a bad chunk is still
//!   delivered, then the stream ends with the typed [`TraceError`]
//!   parked for [`PipelinedReader::error`] / [`finish`] to report.
//! * A panic on the decoder thread is re-raised on the consumer thread
//!   (like `profile_batch` re-raises worker panics in task order — there
//!   is a single decode task, so "task order" is simply "as soon as the
//!   consumer notices").
//! * A decoder that goes away *without* a verdict and *without* a panic
//!   is an infrastructure failure, reported as
//!   [`TraceError::Internal`] — never as `Truncated`, which would blame
//!   the input for a pipeline fault.

use crate::chunk::{Chunk, DEFAULT_CHUNK_CAPACITY};
use crate::event::Access;
use crate::io::{TraceError, TraceReader};
use crate::stream::AccessStream;
use std::fmt;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError};
use std::thread;

/// Verdict parked when the decode link dies without delivering one.
const DEAD_DECODER: &str = "decoder went away without delivering a verdict";

/// Tuning knobs for [`PipelinedReader`].
#[derive(Debug, Clone, Copy)]
pub struct PipelineOptions {
    /// Accesses decoded per chunk buffer
    /// (default [`DEFAULT_CHUNK_CAPACITY`], clamped to ≥ 1).
    pub chunk_capacity: usize,
    /// Chunk buffers circulating between decoder and consumer — the
    /// decode-ahead depth (default 2 = double buffering, clamped to ≥ 2).
    pub depth: usize,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            chunk_capacity: DEFAULT_CHUNK_CAPACITY,
            depth: 2,
        }
    }
}

impl PipelineOptions {
    /// Sets the per-chunk access capacity.
    #[must_use]
    pub fn with_chunk_capacity(mut self, capacity: usize) -> Self {
        self.chunk_capacity = capacity;
        self
    }

    /// Sets the decode-ahead depth (number of ring buffers).
    #[must_use]
    pub fn with_depth(mut self, depth: usize) -> Self {
        self.depth = depth;
        self
    }
}

/// What the decoder sends back to the consumer.
#[derive(Debug)]
pub enum DecodeMsg {
    /// A decoded, non-empty chunk.
    Chunk(Chunk),
    /// The stream is over; the payload is [`TraceReader::finish`]'s
    /// verdict.
    End(Result<(), TraceError>),
}

/// Outcome of one [`DecoderTask::step`].
#[derive(Debug)]
pub enum DecodeTurn {
    /// A decoded, non-empty chunk; the stream continues.
    More(Chunk),
    /// The stream is over.
    Done {
        /// The decoded prefix of a chunk that failed mid-decode
        /// (chunk-granularity recovery: it is delivered before the
        /// verdict). `None` on clean EOF.
        prefix: Option<Chunk>,
        /// [`TraceReader::finish`]'s verdict.
        verdict: Result<(), TraceError>,
    },
}

/// The decode loop as an explicitly steppable state machine: one call
/// to [`step`](DecoderTask::step) is one decoder turn — fill one
/// recycled buffer, report what happened. [`run_decoder`] loops it on
/// the decode thread; the deterministic simulator single-steps it.
#[derive(Debug)]
pub struct DecoderTask {
    reader: Option<TraceReader>,
    capacity: usize,
}

impl DecoderTask {
    /// Wraps `reader` for stepping; `capacity` is the per-chunk access
    /// budget (clamped to ≥ 1).
    #[must_use]
    pub fn new(reader: TraceReader, capacity: usize) -> DecoderTask {
        DecoderTask {
            reader: Some(reader),
            capacity: capacity.max(1),
        }
    }

    /// True once a previous step returned [`DecodeTurn::Done`].
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.reader.is_none()
    }

    /// One decoder turn: decode up to the capacity into `chunk`
    /// (reusing its buffer) and report the outcome. Stepping a task
    /// that already finished yields a `Done` with an
    /// [`TraceError::Internal`] verdict.
    pub fn step(&mut self, mut chunk: Chunk) -> DecodeTurn {
        let decoded = match self.reader.as_mut() {
            Some(reader) => reader.decode_chunk(&mut chunk, self.capacity),
            None => {
                return DecodeTurn::Done {
                    prefix: None,
                    verdict: Err(TraceError::Internal("decoder stepped past its verdict")),
                }
            }
        };
        match decoded {
            Ok(0) => DecodeTurn::Done {
                prefix: None,
                verdict: self.finish(),
            },
            Ok(_) => DecodeTurn::More(chunk),
            Err(_) => {
                // Chunk-granularity recovery: the valid prefix still
                // flows downstream, then the parked error is reported.
                let prefix = if chunk.is_empty() { None } else { Some(chunk) };
                DecodeTurn::Done {
                    prefix,
                    verdict: self.finish(),
                }
            }
        }
    }

    /// Consumes the reader and produces the final verdict.
    fn finish(&mut self) -> Result<(), TraceError> {
        match self.reader.take() {
            Some(reader) => reader.finish(),
            None => Err(TraceError::Internal("decoder stepped past its verdict")),
        }
    }
}

/// Decoder-thread main loop: recycle a buffer, step the task, ship the
/// turn's output.
fn run_decoder(mut task: DecoderTask, ring: &Receiver<Chunk>, out: &SyncSender<DecodeMsg>) {
    loop {
        // Blocking on a recycled buffer is the backpressure bound: with
        // the consumer holding the rest of the ring, the decoder cannot
        // run further than `depth` chunks ahead.
        let Ok(chunk) = ring.recv() else {
            return; // consumer hung up
        };
        match task.step(chunk) {
            DecodeTurn::More(chunk) => {
                if out.send(DecodeMsg::Chunk(chunk)).is_err() {
                    return; // consumer hung up
                }
            }
            DecodeTurn::Done { prefix, verdict } => {
                if let Some(chunk) = prefix {
                    if out.send(DecodeMsg::Chunk(chunk)).is_err() {
                        return;
                    }
                }
                let _ = out.send(DecodeMsg::End(verdict));
                return;
            }
        }
    }
}

/// The consumer side's view of a decoder driven by somebody else —
/// the deterministic simulator's hook into [`PipelinedReader`].
///
/// Production backs the reader with real channels and the
/// `rdxt-decode` thread; a virtual link substitutes single-threaded
/// queues whose progress the caller schedules explicitly. The contract
/// mirrors the channel pair:
///
/// * [`recycle`](VirtualLink::recycle) hands a drained buffer back for
///   reuse (the ring direction). The link must never hold more buffers
///   than its configured depth.
/// * [`pull`](VirtualLink::pull) produces the next message, running as
///   many decoder turns as its schedule dictates. Returning `None`
///   means the decoder is gone without a verdict — the consumer treats
///   it exactly like a dead channel (an [`TraceError::Internal`]
///   verdict), which is how the simulator injects worker-death faults.
pub trait VirtualLink: Send {
    /// Hands a drained buffer back to the decoder for reuse.
    fn recycle(&mut self, chunk: Chunk);
    /// Produces the next decoder message, or `None` if the decoder is
    /// gone without having delivered its verdict.
    fn pull(&mut self) -> Option<DecodeMsg>;
}

/// The consumer's connection to its decoder: real channels plus a
/// thread, or a simulator-driven virtual link.
enum Link {
    Threaded {
        ring: Option<SyncSender<Chunk>>,
        data: Option<Receiver<DecodeMsg>>,
        worker: Option<thread::JoinHandle<()>>,
    },
    Virtual(Option<Box<dyn VirtualLink>>),
}

/// Outcome of one pull from the link.
enum Pull {
    Msg(DecodeMsg),
    Dead,
}

impl Link {
    /// Hands a drained buffer back; `true` if the decoder took it.
    fn recycle(&mut self, chunk: Chunk) -> bool {
        match self {
            Link::Threaded { ring, .. } => {
                ring.as_ref().is_some_and(|tx| tx.try_send(chunk).is_ok())
            }
            Link::Virtual(link) => match link.as_mut() {
                Some(link) => {
                    link.recycle(chunk);
                    true
                }
                None => false,
            },
        }
    }

    /// Pulls the next message, blocking (threaded) or running decoder
    /// turns (virtual) as needed.
    fn pull(&mut self) -> Pull {
        match self {
            Link::Threaded { data, .. } => match data {
                None => Pull::Dead,
                Some(rx) => match rx.try_recv() {
                    Ok(msg) => Pull::Msg(msg),
                    Err(TryRecvError::Empty) => {
                        // The decoder hasn't kept up; block for it.
                        rdx_metrics::counter("rdx.trace.decode.stalls").incr();
                        match rx.recv() {
                            Ok(msg) => Pull::Msg(msg),
                            Err(_) => Pull::Dead,
                        }
                    }
                    Err(TryRecvError::Disconnected) => Pull::Dead,
                },
            },
            Link::Virtual(link) => match link.as_mut() {
                None => Pull::Dead,
                Some(link) => match link.pull() {
                    Some(msg) => Pull::Msg(msg),
                    None => Pull::Dead,
                },
            },
        }
    }

    /// Drops both directions so the decoder (if still alive) exits.
    fn hang_up(&mut self) {
        match self {
            Link::Threaded { ring, data, .. } => {
                *ring = None;
                *data = None;
            }
            Link::Virtual(link) => *link = None,
        }
    }

    /// Joins the decode thread if one exists and hasn't been joined.
    fn join_worker(&mut self) -> Option<thread::Result<()>> {
        match self {
            Link::Threaded { worker, .. } => worker.take().map(thread::JoinHandle::join),
            Link::Virtual(_) => None,
        }
    }
}

/// A [`TraceReader`] whose decoding runs ahead on a dedicated thread.
///
/// Implements the full [`AccessStream`] chunk API
/// (`next_chunk`/`consume_chunk`/`chunk_capable`), so `Machine::run`'s
/// bulk scanner consumes it exactly like an in-memory stream while the
/// next chunk decodes concurrently.
///
/// Dropping the reader mid-stream hangs up both channels and joins the
/// decoder; a decoder panic is re-raised on the consumer thread by the
/// first call that notices it (or by `drop`, unless already panicking).
pub struct PipelinedReader {
    name: String,
    declared: u64,
    link: Link,
    current: Chunk,
    pos: usize,
    delivered: u64,
    done: Option<Result<(), TraceError>>,
}

impl fmt::Debug for PipelinedReader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PipelinedReader")
            .field("name", &self.name)
            .field("declared", &self.declared)
            .field("delivered", &self.delivered)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl PipelinedReader {
    /// Pipelines `reader` with default [`PipelineOptions`].
    #[must_use]
    pub fn new(reader: TraceReader) -> Self {
        Self::with_options(reader, PipelineOptions::default())
    }

    /// Pipelines `reader` with explicit options.
    #[must_use]
    pub fn with_options(reader: TraceReader, opts: PipelineOptions) -> Self {
        let name = reader.name().to_owned();
        let declared = reader.declared_len();
        let capacity = opts.chunk_capacity.max(1);
        let depth = opts.depth.max(2);
        let (ring_tx, ring_rx) = sync_channel::<Chunk>(depth);
        // `depth` in-flight chunks plus the final `End` message: sends
        // on the data channel can never block, so `drop` cannot
        // deadlock against a decoder stuck in `send`.
        let (data_tx, data_rx) = sync_channel::<DecodeMsg>(depth + 1);
        for _ in 0..depth {
            let _ = ring_tx.send(Chunk::default());
        }
        let task = DecoderTask::new(reader, capacity);
        let spawned = thread::Builder::new()
            .name("rdxt-decode".into())
            .spawn(move || run_decoder(task, &ring_rx, &data_tx));
        let (worker, done) = match spawned {
            Ok(handle) => (Some(handle), None),
            // Spawn failure (resource exhaustion): surface it as a
            // typed error instead of panicking.
            Err(e) => (None, Some(Err(TraceError::Io(e)))),
        };
        PipelinedReader {
            name,
            declared,
            link: Link::Threaded {
                ring: Some(ring_tx),
                data: Some(data_rx),
                worker,
            },
            current: Chunk::default(),
            pos: 0,
            delivered: 0,
            done,
        }
    }

    /// A reader over a [`VirtualLink`]: no decoder thread, no real
    /// channels — the link's owner (the deterministic simulator) runs
    /// decoder turns on the calling thread, under its own schedule.
    /// `name` and `declared` mirror the trace header the link decodes.
    #[must_use]
    pub fn with_virtual_link(
        name: impl Into<String>,
        declared: u64,
        link: Box<dyn VirtualLink>,
    ) -> Self {
        PipelinedReader {
            name: name.into(),
            declared,
            link: Link::Virtual(Some(link)),
            current: Chunk::default(),
            pos: 0,
            delivered: 0,
            done: None,
        }
    }

    /// The trace's embedded name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The record count declared in the trace header.
    #[must_use]
    pub fn declared_len(&self) -> u64 {
        self.declared
    }

    /// Accesses handed to the consumer so far.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// The decode error the stream ended with, if any. Only meaningful
    /// once the stream has ended (`next_access`/`next_chunk` returned
    /// `None`).
    #[must_use]
    pub fn error(&self) -> Option<&TraceError> {
        self.done.as_ref().and_then(|r| r.as_ref().err())
    }

    /// Accesses buffered in the current chunk, not yet handed out.
    fn buffered(&self) -> usize {
        self.current.len() - self.pos
    }

    /// Ensures the current chunk has unconsumed accesses; `false` once
    /// the stream is over (clean EOF, decode error, or dead decoder).
    fn advance(&mut self) -> bool {
        loop {
            if self.pos < self.current.len() {
                return true;
            }
            if self.done.is_some() {
                return false;
            }
            // Hand the drained buffer back to the decoder for reuse.
            if self.current.accesses.capacity() > 0 {
                let buf = std::mem::take(&mut self.current);
                if self.link.recycle(buf) {
                    rdx_metrics::counter("rdx.trace.decode.recycled_buffers").incr();
                }
            } else {
                self.current = Chunk::default();
            }
            self.pos = 0;
            match self.link.pull() {
                Pull::Msg(DecodeMsg::Chunk(chunk)) => {
                    self.current = chunk;
                    self.pos = 0;
                }
                Pull::Msg(DecodeMsg::End(result)) => {
                    self.done = Some(result);
                    self.link.hang_up();
                }
                Pull::Dead => self.reap_worker(),
            }
        }
    }

    /// The link died without an `End` message: the decoder is gone.
    /// Re-raise its panic on this thread; a non-panic exit without a
    /// verdict is an *infrastructure* failure — report it as
    /// [`TraceError::Internal`], never as `Truncated` (which would
    /// misblame the input for a pipeline fault).
    fn reap_worker(&mut self) {
        self.link.hang_up();
        if let Some(Err(payload)) = self.link.join_worker() {
            std::panic::resume_unwind(payload);
        }
        if self.done.is_none() {
            self.done = Some(Err(TraceError::Internal(DEAD_DECODER)));
        }
    }

    /// Drains the rest of the stream and reports the decoder's verdict:
    /// `Ok(())` only if the whole input decoded cleanly and exactly
    /// (same contract as [`TraceReader::finish`]).
    ///
    /// # Errors
    ///
    /// The [`TraceError`] the decode ended with, if any.
    pub fn finish(mut self) -> Result<(), TraceError> {
        while self.advance() {
            let n = self.buffered();
            self.consume_chunk(n);
        }
        match self.done.take() {
            Some(result) => result,
            None => Err(TraceError::Internal(DEAD_DECODER)),
        }
    }
}

impl AccessStream for PipelinedReader {
    fn next_access(&mut self) -> Option<Access> {
        if !self.advance() {
            return None;
        }
        let access = self.current.accesses.get(self.pos).copied();
        if access.is_some() {
            self.pos += 1;
            self.delivered += 1;
        }
        access
    }

    fn remaining_hint(&self) -> Option<u64> {
        if self.done.is_some() {
            return Some(self.buffered() as u64);
        }
        Some(self.declared.saturating_sub(self.delivered))
    }

    fn chunk_capable(&self) -> bool {
        true
    }

    fn next_chunk(&mut self) -> Option<&[Access]> {
        if !self.advance() {
            return None;
        }
        self.current.accesses.get(self.pos..)
    }

    fn consume_chunk(&mut self, n: usize) {
        debug_assert!(n <= self.buffered());
        let taken = n.min(self.buffered());
        self.pos += taken;
        self.delivered += taken as u64;
    }
}

impl Drop for PipelinedReader {
    fn drop(&mut self) {
        self.link.hang_up();
        if let Some(Err(payload)) = self.link.join_worker() {
            // Propagate a decoder panic from `drop` too, unless this
            // thread is already unwinding (double panic aborts).
            if !thread::panicking() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
impl PipelinedReader {
    /// Test-only: a reader whose decoder thread panics immediately,
    /// for pinning the panic-propagation contract.
    fn with_poisoned_worker() -> Self {
        let (ring_tx, ring_rx) = sync_channel::<Chunk>(1);
        let (data_tx, data_rx) = sync_channel::<DecodeMsg>(1);
        let worker = thread::Builder::new()
            .name("rdxt-decode-poisoned".into())
            .spawn(move || {
                let _keep_alive = (ring_rx, data_tx);
                panic!("injected decoder panic");
            })
            .expect("spawn test worker");
        PipelinedReader {
            name: "poisoned".into(),
            declared: 1,
            link: Link::Threaded {
                ring: Some(ring_tx),
                data: Some(data_rx),
                worker: Some(worker),
            },
            current: Chunk::default(),
            pos: 0,
            delivered: 0,
            done: None,
        }
    }

    /// Test-only: a reader whose decoder thread exits cleanly without
    /// ever sending a verdict — the worker-death failure mode.
    fn with_vanishing_worker() -> Self {
        let (ring_tx, ring_rx) = sync_channel::<Chunk>(1);
        let (data_tx, data_rx) = sync_channel::<DecodeMsg>(1);
        let worker = thread::Builder::new()
            .name("rdxt-decode-vanishing".into())
            .spawn(move || {
                drop((ring_rx, data_tx)); // no End, no panic: just gone
            })
            .expect("spawn test worker");
        PipelinedReader {
            name: "vanishing".into(),
            declared: 1,
            link: Link::Threaded {
                ring: Some(ring_tx),
                data: Some(data_rx),
                worker: Some(worker),
            },
            current: Chunk::default(),
            pos: 0,
            delivered: 0,
            done: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::to_bytes;
    use crate::trace::Trace;

    fn reader_for(trace: &Trace) -> TraceReader {
        TraceReader::new(to_bytes(trace)).expect("valid header")
    }

    #[test]
    fn pipelined_matches_trace_exactly() {
        let t = Trace::from_addresses("p", (0..10_000u64).map(|i| (i * 67) % 4096));
        let opts = PipelineOptions::default().with_chunk_capacity(256);
        let mut piped = PipelinedReader::with_options(reader_for(&t), opts);
        assert!(piped.chunk_capable());
        assert_eq!(piped.name(), "p");
        assert_eq!(piped.declared_len(), 10_000);
        let mut got = Vec::new();
        while let Some(run) = piped.next_chunk() {
            assert!(!run.is_empty());
            got.extend_from_slice(run);
            let n = run.len();
            piped.consume_chunk(n);
        }
        assert_eq!(got.as_slice(), t.accesses());
        assert_eq!(piped.delivered(), 10_000);
        assert!(piped.error().is_none());
        assert!(piped.finish().is_ok());
    }

    #[test]
    fn pipelined_scalar_consumption_works() {
        let t = Trace::from_addresses("s", (0..500u64).map(|i| i * 64));
        let opts = PipelineOptions::default()
            .with_chunk_capacity(64)
            .with_depth(3);
        let mut piped = PipelinedReader::with_options(reader_for(&t), opts);
        let mut got = Vec::new();
        while let Some(a) = piped.next_access() {
            got.push(a);
        }
        assert_eq!(got.as_slice(), t.accesses());
        assert!(piped.finish().is_ok());
    }

    #[test]
    fn empty_trace_ends_immediately() {
        let t = Trace::new("empty");
        let mut piped = PipelinedReader::new(reader_for(&t));
        assert!(piped.next_chunk().is_none());
        assert!(piped.next_access().is_none());
        assert_eq!(piped.remaining_hint(), Some(0));
        assert!(piped.finish().is_ok());
    }

    #[test]
    fn truncated_input_delivers_prefix_then_error() {
        let t = Trace::from_addresses("cut", (0..1000u64).map(|i| i * 64));
        let raw = to_bytes(&t);
        let cut = raw.slice(..raw.len() - 9);
        let reader = TraceReader::new(cut).expect("header intact");
        let opts = PipelineOptions::default().with_chunk_capacity(128);
        let mut piped = PipelinedReader::with_options(reader, opts);
        let streamed = piped.count_remaining();
        assert!(streamed < 1000, "must end early, got {streamed}");
        assert!(matches!(piped.error(), Some(TraceError::Truncated)));
        assert!(matches!(piped.finish(), Err(TraceError::Truncated)));
    }

    #[test]
    fn trailing_data_reported_by_finish() {
        let t = Trace::from_addresses("trail", [1u64, 2, 3]);
        let mut raw = to_bytes(&t).to_vec();
        raw.extend_from_slice(&[0x00, 0x00]);
        let reader = TraceReader::new(raw).expect("header intact");
        let mut piped = PipelinedReader::new(reader);
        assert_eq!(piped.count_remaining(), 3);
        assert!(matches!(piped.finish(), Err(TraceError::TrailingData(2))));
    }

    #[test]
    fn finish_without_consuming_drains_decoder() {
        let t = Trace::from_addresses("drain", (0..5000u64).map(|i| i * 8));
        let piped = PipelinedReader::with_options(
            reader_for(&t),
            PipelineOptions::default().with_chunk_capacity(64),
        );
        assert!(piped.finish().is_ok());
    }

    #[test]
    fn drop_mid_stream_does_not_hang() {
        let t = Trace::from_addresses("drop", (0..50_000u64).map(|i| i * 8));
        let opts = PipelineOptions::default()
            .with_chunk_capacity(128)
            .with_depth(2);
        let mut piped = PipelinedReader::with_options(reader_for(&t), opts);
        assert!(piped.next_access().is_some());
        drop(piped); // decoder blocked on the ring must exit cleanly
    }

    #[test]
    fn decoder_panic_is_reraised_on_consumer() {
        let caught = std::panic::catch_unwind(|| {
            let mut piped = PipelinedReader::with_poisoned_worker();
            let _ = piped.next_access();
        })
        .expect_err("decoder panic must propagate");
        let msg = caught
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| caught.downcast_ref::<String>().cloned());
        assert_eq!(msg.as_deref(), Some("injected decoder panic"));
    }

    #[test]
    fn dead_worker_without_verdict_is_internal_not_truncated() {
        // A decoder that exits cleanly without a verdict is a pipeline
        // failure: the consumer must report `Internal`, never blame the
        // input with `Truncated`. (Regression: reap_worker used to park
        // Truncated here.)
        let mut piped = PipelinedReader::with_vanishing_worker();
        assert!(piped.next_access().is_none());
        assert!(
            matches!(piped.error(), Some(TraceError::Internal(_))),
            "got {:?}",
            piped.error()
        );
        assert!(matches!(piped.finish(), Err(TraceError::Internal(_))));
    }

    #[test]
    fn depth_bounds_buffers_in_flight() {
        // A depth-2 ring over a big trace: the consumer never sees more
        // than the ring capacity ahead of what it consumed. (Indirect:
        // the stream completes with bounded buffers and exact content.)
        let t = Trace::from_addresses("bound", (0..40_000u64).map(|i| i * 16));
        let opts = PipelineOptions::default()
            .with_chunk_capacity(512)
            .with_depth(2);
        let mut piped = PipelinedReader::with_options(reader_for(&t), opts);
        let mut max_run = 0usize;
        let mut total = 0u64;
        while let Some(run) = piped.next_chunk() {
            max_run = max_run.max(run.len());
            total += run.len() as u64;
            let n = run.len();
            piped.consume_chunk(n);
        }
        assert_eq!(total, 40_000);
        assert!(max_run <= 512, "chunk capacity exceeded: {max_run}");
        assert!(piped.finish().is_ok());
    }

    #[test]
    fn decoder_task_steps_match_scalar_decode() {
        // The steppable task is the same machine the thread loops: a
        // hand-driven step sequence reproduces the scalar decode and
        // ends with the same verdict.
        let t = Trace::from_addresses("steps", (0..1000u64).map(|i| i * 32));
        let mut task = DecoderTask::new(reader_for(&t), 96);
        let mut got = Vec::new();
        loop {
            match task.step(Chunk::default()) {
                DecodeTurn::More(chunk) => got.extend_from_slice(&chunk.accesses),
                DecodeTurn::Done { prefix, verdict } => {
                    if let Some(chunk) = prefix {
                        got.extend_from_slice(&chunk.accesses);
                    }
                    assert!(verdict.is_ok());
                    break;
                }
            }
        }
        assert_eq!(got.as_slice(), t.accesses());
        assert!(task.is_done());
        // Stepping past the verdict is an internal error, not a panic.
        assert!(matches!(
            task.step(Chunk::default()),
            DecodeTurn::Done {
                verdict: Err(TraceError::Internal(_)),
                ..
            }
        ));
    }

    /// Minimal virtual link: runs the decoder task inline, one turn per
    /// pull — the degenerate deterministic schedule.
    struct InlineLink {
        task: DecoderTask,
        ring: Vec<Chunk>,
        pending_end: Option<Result<(), TraceError>>,
    }

    impl VirtualLink for InlineLink {
        fn recycle(&mut self, chunk: Chunk) {
            self.ring.push(chunk);
        }
        fn pull(&mut self) -> Option<DecodeMsg> {
            if let Some(verdict) = self.pending_end.take() {
                return Some(DecodeMsg::End(verdict));
            }
            let buf = self.ring.pop().unwrap_or_default();
            match self.task.step(buf) {
                DecodeTurn::More(chunk) => Some(DecodeMsg::Chunk(chunk)),
                DecodeTurn::Done {
                    prefix: Some(chunk),
                    verdict,
                } => {
                    self.pending_end = Some(verdict);
                    Some(DecodeMsg::Chunk(chunk))
                }
                DecodeTurn::Done {
                    prefix: None,
                    verdict,
                } => Some(DecodeMsg::End(verdict)),
            }
        }
    }

    #[test]
    fn virtual_link_reproduces_the_stream_without_threads() {
        let t = Trace::from_addresses("virt", (0..2000u64).map(|i| (i * 13) % 512));
        let reader = reader_for(&t);
        let declared = reader.declared_len();
        let link = InlineLink {
            task: DecoderTask::new(reader, 128),
            ring: Vec::new(),
            pending_end: None,
        };
        let mut piped = PipelinedReader::with_virtual_link("virt", declared, Box::new(link));
        let mut got = Vec::new();
        while let Some(run) = piped.next_chunk() {
            got.extend_from_slice(run);
            let n = run.len();
            piped.consume_chunk(n);
        }
        assert_eq!(got.as_slice(), t.accesses());
        assert_eq!(piped.delivered(), 2000);
        assert!(piped.finish().is_ok());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::io::to_bytes;
    use crate::trace::Trace;
    use proptest::prelude::*;

    proptest! {
        // Thread-spawning cases are costly; keep the case count modest.
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The pipelined reader produces the byte-for-byte same access
        /// sequence — and on corrupt input the same first error after
        /// the same delivered prefix — as the per-access `try_next`
        /// loop, for arbitrary capacities, depths and truncations.
        #[test]
        fn pipelined_matches_try_next(
            records in prop::collection::vec((any::<u64>(), any::<bool>()), 0..128),
            capacity in 1usize..48,
            depth in 2usize..5,
            cut_back in 0usize..24,
        ) {
            let t: Trace = records.iter().copied().collect();
            let full = to_bytes(&t);
            let cut = full.len().saturating_sub(cut_back).max(20);
            for raw in [full.clone(), full.slice(..cut.min(full.len()))] {
                let Ok(mut scalar) = TraceReader::new(raw.clone()) else { continue };
                let mut want = Vec::new();
                while let Some(a) = scalar.next_access() {
                    want.push(a);
                }
                let Ok(reader) = TraceReader::new(raw) else { continue };
                let opts = PipelineOptions::default()
                    .with_chunk_capacity(capacity)
                    .with_depth(depth);
                let mut piped = PipelinedReader::with_options(reader, opts);
                let mut got = Vec::new();
                while let Some(run) = piped.next_chunk() {
                    prop_assert!(!run.is_empty());
                    got.extend_from_slice(run);
                    let n = run.len();
                    piped.consume_chunk(n);
                }
                prop_assert_eq!(&got, &want);
                prop_assert_eq!(piped.delivered(), scalar.decoded());
                match scalar.error() {
                    None => prop_assert!(piped.error().is_none()),
                    Some(TraceError::Truncated) => prop_assert!(
                        matches!(piped.error(), Some(TraceError::Truncated))
                    ),
                    Some(other) => prop_assert!(false, "unexpected scalar error {other}"),
                }
                let scalar_finish = scalar.finish();
                let piped_finish = piped.finish();
                prop_assert_eq!(scalar_finish.is_ok(), piped_finish.is_ok());
            }
        }
    }
}
