//! Decode kernels: interchangeable inner loops for the bulk varint
//! decoder, behind one trait and a capability/cost table.
//!
//! [`TraceReader::decode_chunk`](crate::TraceReader::decode_chunk) owns
//! chunk bookkeeping (targets, cursor commit, error parking); the
//! per-record byte crunching is delegated to a [`DecodeKernel`] chosen
//! once per reader. Three kinds exist workspace-wide ([`KernelKind`]):
//!
//! * **scalar** — the original per-byte loop, kept verbatim. It is the
//!   oracle: every other kernel must be byte-for-byte equivalent to it
//!   (outcome, committed cursor, and error taxonomy), which the
//!   equivalence proptests in `io.rs` enforce.
//! * **swar** — SIMD-within-a-register: loads 8 bytes as one `u64` via
//!   `from_le_bytes`, finds the record terminator (continuation bit
//!   clear) with `!w & 0x8080…80`, and folds the 7-bit payload groups
//!   with three mask/shift rounds — no per-byte branches, no `u128`
//!   arithmetic on the common short records. Records longer than 8
//!   bytes and buffer tails fall back to the scalar per-record step.
//! * **simd** — reserved for arch-specific lane kernels. The decoder's
//!   boundary find is already word-parallel and its value chain is
//!   serial in `prev`, so no lane-level variant beats SWAR here; the
//!   table marks the slot unavailable and [`resolve`] falls back to
//!   SWAR. (The scan side in `memsim` does ship an AVX2 kernel.)
//!
//! The table idiom (capability + relative cost per kernel, `auto`
//! resolving to the cheapest available) follows Morello's kernel/cost
//! split, so adding an arch kernel is one new row plus one impl.

use crate::event::{Access, AccessKind, Address};
use crate::io::{unzigzag, varint_bits_overflow, TraceError};

/// A concrete kernel implementation family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Portable per-element reference implementation (the oracle).
    Scalar,
    /// Portable SIMD-within-a-register implementation (safe Rust).
    Swar,
    /// Arch-specific SIMD (runtime-detected; availability varies).
    Simd,
}

impl KernelKind {
    /// The kernel's name as used in CLI flags and bench JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Swar => "swar",
            KernelKind::Simd => "simd",
        }
    }
}

/// A kernel selection: a fixed kind, or `auto` (cheapest available).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelChoice {
    /// Pick the cheapest available kernel from the capability table.
    #[default]
    Auto,
    /// Force the scalar reference kernel.
    Scalar,
    /// Force the portable SWAR kernel.
    Swar,
    /// Request the arch SIMD kernel (falls back to SWAR where the
    /// table marks it unavailable).
    Simd,
}

impl KernelChoice {
    /// Parses a CLI kernel name (`auto|scalar|swar|simd`).
    #[must_use]
    pub fn parse(s: &str) -> Option<KernelChoice> {
        match s {
            "auto" => Some(KernelChoice::Auto),
            "scalar" => Some(KernelChoice::Scalar),
            "swar" => Some(KernelChoice::Swar),
            "simd" => Some(KernelChoice::Simd),
            _ => None,
        }
    }

    /// The choice's CLI name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KernelChoice::Auto => "auto",
            KernelChoice::Scalar => "scalar",
            KernelChoice::Swar => "swar",
            KernelChoice::Simd => "simd",
        }
    }
}

/// One row of a capability/cost table: whether a kernel kind is usable
/// on this host, and its relative cost (scalar ≡ 100; lower is faster).
#[derive(Debug, Clone, Copy)]
pub struct KernelEntry {
    /// The kernel family this row describes.
    pub kind: KernelKind,
    /// True when the kernel can run on this host (arch + CPU features).
    pub available: bool,
    /// Relative cost per element, scalar = 100 (used by `auto`).
    pub cost: u32,
}

/// Resolves a [`KernelChoice`] against a capability table: `auto` takes
/// the cheapest available row; a forced kind that is unavailable
/// degrades to the cheapest available portable kind (never scalar
/// unless scalar is all that's left).
#[must_use]
pub fn resolve(table: &[KernelEntry], choice: KernelChoice) -> KernelKind {
    let cheapest = table
        .iter()
        .filter(|e| e.available)
        .min_by_key(|e| e.cost)
        .map_or(KernelKind::Scalar, |e| e.kind);
    let want = match choice {
        KernelChoice::Auto => return cheapest,
        KernelChoice::Scalar => KernelKind::Scalar,
        KernelChoice::Swar => KernelKind::Swar,
        KernelChoice::Simd => KernelKind::Simd,
    };
    if table.iter().any(|e| e.kind == want && e.available) {
        want
    } else {
        cheapest
    }
}

/// The decode-side capability/cost table for this host.
///
/// The `simd` row is unavailable by design, not omission: the
/// terminator search is already word-parallel in the SWAR kernel and
/// the address chain (`prev += delta`) is serial, so a lane kernel has
/// nothing left to parallelize. `resolve` sends `simd` to SWAR.
#[must_use]
pub fn decode_kernels() -> [KernelEntry; 3] {
    [
        KernelEntry {
            kind: KernelKind::Scalar,
            available: true,
            cost: 100,
        },
        KernelEntry {
            kind: KernelKind::Swar,
            available: true,
            cost: 35,
        },
        KernelEntry {
            kind: KernelKind::Simd,
            available: false,
            cost: 35,
        },
    ]
}

/// Resolves a decode kernel choice against [`decode_kernels`].
#[must_use]
pub fn resolve_decode(choice: KernelChoice) -> KernelKind {
    resolve(&decode_kernels(), choice)
}

/// Outcome of one kernel pass over a record window.
#[derive(Debug)]
pub struct KernelRun {
    /// Bytes consumed by *complete* records (the commit cursor —
    /// a partial record at a failure point is not included).
    pub committed: usize,
    /// The typed failure that stopped the pass, if any. The records
    /// decoded before it are valid and already pushed to `out`.
    pub failure: Option<TraceError>,
}

/// One interchangeable inner loop of the bulk varint decoder.
///
/// Implementations must be exactly equivalent to [`ScalarDecode`]:
/// same accesses pushed, same committed cursor, same
/// truncated-vs-malformed verdicts, for every input and target.
pub trait DecodeKernel {
    /// Which kernel family this is.
    fn kind(&self) -> KernelKind;

    /// Decodes records from `bytes` into `out` until `out.len()`
    /// reaches `target`, the bytes run out (`Truncated`) or an overlong
    /// varint is hit (`Malformed`). `prev` is the delta-chain state,
    /// updated to cover exactly the records pushed.
    fn decode_records(
        &self,
        bytes: &[u8],
        target: usize,
        prev: &mut u64,
        out: &mut Vec<Access>,
    ) -> KernelRun;
}

/// The original per-byte decode loop, retained verbatim as the oracle.
#[derive(Debug, Default, Clone, Copy)]
pub struct ScalarDecode;

impl DecodeKernel for ScalarDecode {
    fn kind(&self) -> KernelKind {
        KernelKind::Scalar
    }

    fn decode_records(
        &self,
        bytes: &[u8],
        target: usize,
        prev: &mut u64,
        out: &mut Vec<Access>,
    ) -> KernelRun {
        let mut p = 0usize;
        let mut committed = 0usize;
        let mut failure: Option<TraceError> = None;
        'records: while out.len() < target {
            let mut raw = 0u128;
            let mut shift = 0u32;
            loop {
                let Some(&byte) = bytes.get(p) else {
                    failure = Some(TraceError::Truncated);
                    break 'records;
                };
                p += 1;
                let sig = u128::from(byte & 0x7f);
                // Same canonical-form rule as the scalar `get_varint`:
                // a continuation byte whose significant bits don't fit
                // the 128-bit payload would be silently shifted out.
                if varint_bits_overflow(sig, shift) {
                    failure = Some(TraceError::Malformed);
                    break 'records;
                }
                raw |= sig << shift;
                if byte & 0x80 == 0 {
                    break;
                }
                shift += 7;
            }
            push_record((raw >> 1) as u64, raw & 1 == 1, prev, out);
            committed = p;
        }
        KernelRun { committed, failure }
    }
}

/// Continuation bits of 8 little-endian varint bytes at once.
const CONT_MASK: u64 = 0x8080_8080_8080_8080;
/// Payload bits of 8 little-endian varint bytes at once.
const PAYLOAD_MASK: u64 = 0x7f7f_7f7f_7f7f_7f7f;

/// The portable SWAR kernel: u64-lane terminator find + branch-free
/// payload fold for records of ≤ 8 bytes (56 payload bits — every
/// address delta below ±2^54, i.e. all realistic traces); longer
/// records and buffer tails take the scalar per-record step.
#[derive(Debug, Default, Clone, Copy)]
pub struct SwarDecode;

impl DecodeKernel for SwarDecode {
    fn kind(&self) -> KernelKind {
        KernelKind::Swar
    }

    fn decode_records(
        &self,
        bytes: &[u8],
        target: usize,
        prev: &mut u64,
        out: &mut Vec<Access>,
    ) -> KernelRun {
        let mut p = 0usize;
        let mut committed = 0usize;
        while out.len() < target {
            // Fast lane: 8 readable bytes and a terminator among them.
            if let Some(window) = bytes.get(p..p + 8) {
                let mut w8 = [0u8; 8];
                w8.copy_from_slice(window);
                let w = u64::from_le_bytes(w8);
                let term = !w & CONT_MASK;
                if term != 0 {
                    // Byte index of the first clear continuation bit =
                    // last byte of this record.
                    let len = (term.trailing_zeros() as usize >> 3) + 1;
                    // Keep the record's bytes, drop marker bits, fold
                    // the 7-bit groups. A ≤ 8-byte record carries at
                    // most 56 significant bits, so it can never trip
                    // the 128-bit overlong rule — no check needed.
                    let keep = w & (u64::MAX >> (64 - 8 * len));
                    let raw = fold7(keep & PAYLOAD_MASK);
                    push_record(raw >> 1, raw & 1 == 1, prev, out);
                    p += len;
                    committed = p;
                    continue;
                }
            }
            // Slow lane: tail of the buffer, or a record spilling past
            // the 8-byte window — the scalar step handles truncation
            // and the overlong (128-bit overflow) rule.
            match scalar_record(bytes, &mut p, prev, out) {
                Ok(()) => committed = p,
                Err(e) => {
                    return KernelRun {
                        committed,
                        failure: Some(e),
                    }
                }
            }
        }
        KernelRun {
            committed,
            failure: None,
        }
    }
}

/// Folds eight 7-bit varint payload groups (already masked, little-
/// endian byte order) into one ≤ 56-bit value: three halving rounds of
/// shift-and-or, the classic SWAR compaction.
#[inline]
fn fold7(x: u64) -> u64 {
    let x = (x & 0x007f_007f_007f_007f) | ((x & 0x7f00_7f00_7f00_7f00) >> 1);
    let x = (x & 0x0000_3fff_0000_3fff) | ((x & 0x3fff_0000_3fff_0000) >> 2);
    (x & 0x0000_0000_0fff_ffff) | ((x & 0x0fff_ffff_0000_0000) >> 4)
}

/// Decodes one record the scalar way (byte loop, full error taxonomy),
/// advancing `p` past the bytes it read. On error `p` may sit past the
/// offending byte — the caller's commit cursor is what rewinds.
fn scalar_record(
    bytes: &[u8],
    p: &mut usize,
    prev: &mut u64,
    out: &mut Vec<Access>,
) -> Result<(), TraceError> {
    let mut raw = 0u128;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = bytes.get(*p) else {
            return Err(TraceError::Truncated);
        };
        *p += 1;
        let sig = u128::from(byte & 0x7f);
        if varint_bits_overflow(sig, shift) {
            return Err(TraceError::Malformed);
        }
        raw |= sig << shift;
        if byte & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    push_record((raw >> 1) as u64, raw & 1 == 1, prev, out);
    Ok(())
}

/// Applies one decoded record (zigzagged delta + kind bit) to the
/// address chain and pushes the access.
#[inline]
fn push_record(zz_delta: u64, is_store: bool, prev: &mut u64, out: &mut Vec<Access>) {
    let kind = if is_store {
        AccessKind::Store
    } else {
        AccessKind::Load
    };
    let delta = unzigzag(zz_delta);
    *prev = prev.wrapping_add(delta as u64);
    out.push(Access {
        addr: Address::new(*prev),
        kind,
    });
}

/// Runs the decode kernel of `kind` (static dispatch — the reader
/// resolved the kind once at construction).
pub(crate) fn run_decode(
    kind: KernelKind,
    bytes: &[u8],
    target: usize,
    prev: &mut u64,
    out: &mut Vec<Access>,
) -> KernelRun {
    match kind {
        KernelKind::Scalar => ScalarDecode.decode_records(bytes, target, prev, out),
        // The table has no arch decode kernel; `Simd` cannot reach a
        // reader (resolve_decode sends it to SWAR), but stay total.
        KernelKind::Swar | KernelKind::Simd => SwarDecode.decode_records(bytes, target, prev, out),
    }
}

/// The decode kernel instance for `kind`, for benches and tests that
/// drive kernels directly.
#[must_use]
pub fn decode_kernel(kind: KernelKind) -> &'static dyn DecodeKernel {
    match kind {
        KernelKind::Scalar => &ScalarDecode,
        KernelKind::Swar | KernelKind::Simd => &SwarDecode,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_auto_picks_cheapest_available() {
        assert_eq!(resolve_decode(KernelChoice::Auto), KernelKind::Swar);
        assert_eq!(resolve_decode(KernelChoice::Scalar), KernelKind::Scalar);
        assert_eq!(resolve_decode(KernelChoice::Swar), KernelKind::Swar);
        // No arch decode kernel: simd degrades to the portable SWAR.
        assert_eq!(resolve_decode(KernelChoice::Simd), KernelKind::Swar);
    }

    #[test]
    fn resolve_handles_empty_and_unavailable_tables() {
        assert_eq!(resolve(&[], KernelChoice::Auto), KernelKind::Scalar);
        let none = [KernelEntry {
            kind: KernelKind::Simd,
            available: false,
            cost: 10,
        }];
        assert_eq!(resolve(&none, KernelChoice::Simd), KernelKind::Scalar);
    }

    #[test]
    fn choice_names_roundtrip() {
        for c in [
            KernelChoice::Auto,
            KernelChoice::Scalar,
            KernelChoice::Swar,
            KernelChoice::Simd,
        ] {
            assert_eq!(KernelChoice::parse(c.name()), Some(c));
        }
        assert_eq!(KernelChoice::parse("avx9"), None);
    }

    #[test]
    fn fold7_matches_shift_sum() {
        // Reference: sum of (byte & 0x7f) << (7 * i).
        let cases = [
            0u64,
            0x7f,
            0x0102_0304_0506_0708,
            0x7f7f_7f7f_7f7f_7f7f,
            0x0123_4567_89ab_cdef & PAYLOAD_MASK,
        ];
        for w in cases {
            let masked = w & PAYLOAD_MASK;
            let want = masked
                .to_le_bytes()
                .iter()
                .enumerate()
                .map(|(i, &b)| u64::from(b) << (7 * i))
                .sum::<u64>();
            assert_eq!(fold7(masked), want, "w={w:#x}");
        }
    }
}
