//! Property: `remaining_hint` never under-reports, for every stream
//! shape and across arbitrary chunkings.
//!
//! The hint is used for preallocation and progress reporting. A hint
//! that *over*-reports (e.g. a truncated trace whose header still
//! declares the full count) wastes a little capacity; a hint that
//! *under*-reports silently breaks `Vec::with_capacity`-style
//! consumers and ETA math. So the invariant at every consumption point
//! is `hint ≥ accesses actually still deliverable`, checked here for
//! the scalar `TraceReader`, the `Chunked` buffering adapter (in both
//! pass-through and buffering modes via `Opaque`), the `Take` cap, and
//! the pipelined decode-ahead reader — over arbitrary record
//! sequences, chunk capacities, and decode depths.

use proptest::prelude::*;
use rdx_trace::{
    io, AccessStream, Chunked, Opaque, PipelineOptions, PipelinedReader, Trace, TraceReader,
};

/// Drains `stream`, asserting at every step that the hint is at least
/// the number of accesses actually still deliverable, and returns the
/// delivered count.
fn drain_checking_hint(mut stream: impl AccessStream, total: u64, label: &str) -> u64 {
    let mut delivered = 0u64;
    loop {
        let left = total - delivered;
        if let Some(hint) = stream.remaining_hint() {
            assert!(
                hint >= left,
                "{label}: hint {hint} under-reports with {left} of {total} left \
                 (after {delivered} delivered)"
            );
        }
        match stream.next_access() {
            Some(_) => delivered += 1,
            None => break,
        }
    }
    // Exhausted: a nonzero hint now would also be an over-report lie,
    // but only under-reporting is the contract; just confirm delivery.
    assert_eq!(delivered, total, "{label}: stream shorted the trace");
    delivered
}

proptest! {
    /// The scalar reader and every adapter stack above it keep the
    /// invariant for arbitrary traces and chunk geometries.
    #[test]
    fn hint_never_under_reports(
        records in prop::collection::vec((any::<u64>(), any::<bool>()), 0..200),
        capacity in 1usize..48,
        depth in 2usize..5,
        cap in 0u64..256,
    ) {
        let t: Trace = records.iter().copied().collect();
        let raw = io::to_bytes(&t);
        let total = t.len() as u64;

        let reader = TraceReader::new(raw.clone()).unwrap();
        drain_checking_hint(reader, total, "TraceReader");

        // Chunked over a chunk-capable inner: pass-through mode.
        let reader = TraceReader::new(raw.clone()).unwrap();
        drain_checking_hint(
            Chunked::with_capacity(reader, capacity),
            total,
            "Chunked/passthrough",
        );

        // Chunked over an Opaque inner: buffering mode, where the
        // adapter's own buffer must be folded into the hint.
        let reader = TraceReader::new(raw.clone()).unwrap();
        drain_checking_hint(
            Chunked::with_capacity(Opaque::new(reader), capacity),
            total,
            "Chunked/buffering",
        );

        // Take caps both the stream and the hint.
        let reader = TraceReader::new(raw.clone()).unwrap();
        drain_checking_hint(reader.take(cap), total.min(cap), "Take");

        // The pipelined reader decodes ahead on a thread; buffered
        // chunks must never make the hint dip below what is left.
        let reader = TraceReader::new(raw).unwrap();
        let piped = PipelinedReader::with_options(
            reader,
            PipelineOptions::default()
                .with_chunk_capacity(capacity)
                .with_depth(depth),
        );
        let piped = drain_then(piped, total);
        prop_assert!(piped.finish().is_ok());
    }
}

/// `drain_checking_hint` for the pipelined reader, returning it so the
/// caller can assert a clean `finish()`.
fn drain_then(mut piped: PipelinedReader, total: u64) -> PipelinedReader {
    let mut delivered = 0u64;
    loop {
        let left = total - delivered;
        if let Some(hint) = piped.remaining_hint() {
            assert!(
                hint >= left,
                "PipelinedReader: hint {hint} under-reports with {left} of {total} left"
            );
        }
        match piped.next_access() {
            Some(_) => delivered += 1,
            None => break,
        }
    }
    assert_eq!(delivered, total, "PipelinedReader shorted the trace");
    piped
}
