//! The default build: every probe is an inlined empty body over
//! zero-sized types, so instrumented call sites compile to nothing.
//! The API mirrors `registry` exactly; see the crate docs.

use crate::snapshot::Snapshot;

/// A handle on a named counter (no-op build: zero-sized, does nothing).
#[derive(Debug, Clone, Copy)]
pub struct Counter;

impl Counter {
    /// Adds `n` to the counter (no-op).
    #[inline(always)]
    pub fn add(&self, _n: u64) {}

    /// Adds 1 to the counter (no-op).
    #[inline(always)]
    pub fn incr(&self) {}

    /// The counter's current value (always 0 in the no-op build).
    #[inline(always)]
    #[must_use]
    pub fn get(&self) -> u64 {
        0
    }
}

/// Returns the counter registered under `name` (no-op).
#[inline(always)]
#[must_use]
pub fn counter(_name: &'static str) -> Counter {
    Counter
}

/// Records one duration under timer `name` (no-op).
#[inline(always)]
pub fn record_duration_ns(_name: &'static str, _ns: u64) {}

/// Records one unitless value under `name` (no-op).
#[inline(always)]
pub fn record_value(_name: &'static str, _value: u64) {}

/// RAII guard of an open [`span`] (no-op build: zero-sized, no clock).
#[derive(Debug)]
pub struct SpanGuard;

impl Drop for SpanGuard {
    // Deliberately empty: keeps `drop(guard)` call sites uniform with
    // the enabled build (a drop of a non-Drop ZST is a clippy lint).
    fn drop(&mut self) {}
}

/// Opens a timed span named `name` (no-op: reads no clock).
#[inline(always)]
#[must_use]
pub fn span(_name: &'static str) -> SpanGuard {
    SpanGuard
}

/// Captures the (always empty) metric state.
#[inline(always)]
#[must_use]
pub fn snapshot() -> Snapshot {
    Snapshot::default()
}

/// Zeroes the (nonexistent) metric state (no-op).
#[inline(always)]
pub fn reset() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_are_inert() {
        let c = counter("noop.count");
        c.add(5);
        c.incr();
        assert_eq!(c.get(), 0);
        record_duration_ns("noop.timer", 123);
        {
            let _s = span("noop.span");
            let _inner = span("inner");
        }
        reset();
        let snap = snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.counter("noop.count"), None);
        assert!(snap.to_json().contains("\"enabled\":false"));
    }
}
