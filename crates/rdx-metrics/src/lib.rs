//! Lightweight observability for the RDX profiling pipeline.
//!
//! The profiler's headline claim is *measured overhead*, so the profiler
//! itself must be measurable without distorting what it measures. This
//! crate provides three probe kinds, all addressed by `&'static str`
//! names:
//!
//! * [`counter`] — monotonically increasing [`Counter`]s backed by
//!   relaxed atomics (samples taken, traps fired, bytes decoded, …).
//! * [`span`] — RAII scope timers over the monotonic clock. Spans nest:
//!   a span opened while another is active on the same thread records
//!   under the hierarchical path `outer/inner`.
//! * [`record_duration_ns`] / [`record_value`] — explicit records for
//!   durations measured elsewhere and unitless distributions (queue
//!   depths, batch sizes).
//!
//! [`snapshot`] captures everything observed so far as a [`Snapshot`]
//! that serializes to JSON via [`Snapshot::to_json`]; [`reset`] zeroes
//! the registry between measurement windows (handles stay valid).
//!
//! # Zero cost when disabled
//!
//! All of this is compiled in only under the `enabled` cargo feature.
//! Without it (the default) every function here is an inlined empty
//! body over zero-sized types: no registry, no atomics, no clock reads
//! — the optimizer erases the probes entirely, so instrumented code
//! paths cost exactly as much as uninstrumented ones. Collection never
//! feeds back into what the instrumented code computes, so results are
//! bit-identical with the feature on and off (enforced by the
//! `metrics_determinism` test in `rdx-core`).
//!
//! # Example
//!
//! ```
//! let c = rdx_metrics::counter("demo.events");
//! c.add(3);
//! {
//!     let _outer = rdx_metrics::span("demo.outer");
//!     let _inner = rdx_metrics::span("inner"); // records as demo.outer/inner
//! }
//! let snap = rdx_metrics::snapshot();
//! if rdx_metrics::enabled() {
//!     assert_eq!(snap.counter("demo.events"), Some(3));
//! }
//! println!("{}", snap.to_json());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod snapshot;
pub use snapshot::{Snapshot, TimerStat};

#[cfg(feature = "enabled")]
mod registry;
#[cfg(feature = "enabled")]
pub use registry::{
    counter, record_duration_ns, record_value, reset, snapshot, span, Counter, SpanGuard,
};

#[cfg(not(feature = "enabled"))]
mod noop;
#[cfg(not(feature = "enabled"))]
pub use noop::{
    counter, record_duration_ns, record_value, reset, snapshot, span, Counter, SpanGuard,
};

/// True when the crate was compiled with the `enabled` feature, i.e.
/// probes collect for real rather than compiling to no-ops.
#[must_use]
pub const fn enabled() -> bool {
    cfg!(feature = "enabled")
}
