//! Point-in-time captures of the metric registry, and their JSON form.

use std::fmt::Write as _;

/// Aggregated statistics of one named timer (a span path or an explicit
/// duration record).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimerStat {
    /// Timer name; span paths join nesting levels with `/`.
    pub name: String,
    /// Number of recorded durations.
    pub count: u64,
    /// Sum of all recorded durations in nanoseconds.
    pub total_ns: u64,
    /// Shortest recorded duration in nanoseconds.
    pub min_ns: u64,
    /// Longest recorded duration in nanoseconds.
    pub max_ns: u64,
}

impl TimerStat {
    /// Mean recorded duration in nanoseconds (0 when nothing recorded).
    #[must_use]
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// A consistent point-in-time capture of every counter and timer.
///
/// Entries are sorted by name, so two snapshots of identical state
/// compare equal and serialize to identical JSON.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// `(name, value)` pairs of all counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Statistics of all timers, sorted by name.
    pub timers: Vec<TimerStat>,
}

impl Snapshot {
    /// Looks up a counter value by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// Looks up a timer's statistics by name.
    #[must_use]
    pub fn timer(&self, name: &str) -> Option<&TimerStat> {
        self.timers
            .binary_search_by(|t| t.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.timers[i])
    }

    /// True when nothing has been recorded (always true with the
    /// `enabled` feature off).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.timers.is_empty()
    }

    /// Serializes the snapshot as a self-describing JSON object:
    ///
    /// ```json
    /// {
    ///   "enabled": true,
    ///   "counters": {"rdx.profiler.samples": 61},
    ///   "timers": {"profile/machine": {"count": 1, "total_ns": 9,
    ///              "min_ns": 9, "max_ns": 9, "mean_ns": 9}}
    /// }
    /// ```
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + 48 * (self.counters.len() + self.timers.len()));
        out.push_str("{\"enabled\":");
        out.push_str(if crate::enabled() { "true" } else { "false" });
        out.push_str(",\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(&mut out, name);
            let _ = write!(out, ":{value}");
        }
        out.push_str("},\"timers\":{");
        for (i, t) in self.timers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(&mut out, &t.name);
            let _ = write!(
                out,
                ":{{\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{},\"mean_ns\":{}}}",
                t.count,
                t.total_ns,
                t.min_ns,
                t.max_ns,
                t.mean_ns()
            );
        }
        out.push_str("}}");
        out
    }
}

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub(crate) fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            counters: vec![("a.count".into(), 7), ("b.count".into(), 0)],
            timers: vec![TimerStat {
                name: "outer/inner".into(),
                count: 2,
                total_ns: 10,
                min_ns: 3,
                max_ns: 7,
            }],
        }
    }

    #[test]
    fn lookup_by_name() {
        let s = sample();
        assert_eq!(s.counter("a.count"), Some(7));
        assert_eq!(s.counter("missing"), None);
        assert_eq!(s.timer("outer/inner").unwrap().mean_ns(), 5);
        assert!(s.timer("outer").is_none());
    }

    #[test]
    fn json_shape() {
        let j = sample().to_json();
        assert!(j.starts_with("{\"enabled\":"));
        assert!(j.contains("\"a.count\":7"));
        assert!(j.contains("\"outer/inner\":{\"count\":2,\"total_ns\":10"));
        assert!(j.ends_with("}}"));
    }

    #[test]
    fn json_escapes_specials() {
        let mut out = String::new();
        json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn empty_snapshot() {
        let s = Snapshot::default();
        assert!(s.is_empty());
        assert!(s.to_json().contains("\"counters\":{}"));
    }
}
