//! The real collectors, compiled under the `enabled` feature.
//!
//! One process-global registry interns counters and timers by name.
//! Handles borrow leaked cells (`&'static AtomicU64`), so the lock is
//! taken only on first registration and on snapshot/reset — never on
//! the increment path of a cached [`Counter`]. The number of distinct
//! metric names is small and static, so the leak is bounded.

use crate::snapshot::{Snapshot, TimerStat};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

#[derive(Debug, Default)]
struct TimerCell {
    count: AtomicU64,
    total_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl TimerCell {
    fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<HashMap<&'static str, &'static AtomicU64>>,
    timers: Mutex<HashMap<String, &'static TimerCell>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// A handle on a named monotonically increasing counter.
///
/// Cheap to copy; increments are single relaxed atomic adds. Cache the
/// handle outside loops to skip the name lookup.
#[derive(Debug, Clone, Copy)]
pub struct Counter(&'static AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 to the counter.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The counter's current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Returns the counter registered under `name`, creating it at zero on
/// first use.
#[must_use]
pub fn counter(name: &'static str) -> Counter {
    let mut map = registry().counters.lock().expect("counter registry");
    Counter(
        map.entry(name)
            .or_insert_with(|| &*Box::leak(Box::new(AtomicU64::new(0)))),
    )
}

fn timer_cell(name: &str) -> &'static TimerCell {
    let mut map = registry().timers.lock().expect("timer registry");
    if let Some(cell) = map.get(name) {
        return cell;
    }
    let cell: &'static TimerCell = Box::leak(Box::new(TimerCell {
        min_ns: AtomicU64::new(u64::MAX),
        ..TimerCell::default()
    }));
    map.insert(name.to_owned(), cell);
    cell
}

/// Records one duration under timer `name` (no span nesting applied).
pub fn record_duration_ns(name: &'static str, ns: u64) {
    timer_cell(name).record(ns);
}

/// Records one unitless value under `name` — timers double as generic
/// count/total/min/max distributions (queue depths, batch sizes, …).
pub fn record_value(name: &'static str, value: u64) {
    timer_cell(name).record(value);
}

/// RAII guard of an open [`span`]; records its elapsed time on drop.
#[derive(Debug)]
pub struct SpanGuard {
    cell: &'static TimerCell,
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.cell.record(ns);
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// Opens a timed span named `name`.
///
/// The span records wall time from this call until the returned guard
/// drops, under the `/`-joined path of all spans open on this thread
/// (`span("a")` then `span("b")` records timer `a/b`). Spans on
/// different threads are independent.
#[must_use]
pub fn span(name: &'static str) -> SpanGuard {
    let path = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(name);
        stack.join("/")
    });
    SpanGuard {
        cell: timer_cell(&path),
        start: Instant::now(),
    }
}

/// Captures every counter and timer into a sorted [`Snapshot`].
#[must_use]
pub fn snapshot() -> Snapshot {
    let reg = registry();
    let mut counters: Vec<(String, u64)> = reg
        .counters
        .lock()
        .expect("counter registry")
        .iter()
        .map(|(name, cell)| ((*name).to_owned(), cell.load(Ordering::Relaxed)))
        .collect();
    counters.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    let mut timers: Vec<TimerStat> = reg
        .timers
        .lock()
        .expect("timer registry")
        .iter()
        .filter(|(_, cell)| cell.count.load(Ordering::Relaxed) > 0)
        .map(|(name, cell)| TimerStat {
            name: name.clone(),
            count: cell.count.load(Ordering::Relaxed),
            total_ns: cell.total_ns.load(Ordering::Relaxed),
            min_ns: cell.min_ns.load(Ordering::Relaxed),
            max_ns: cell.max_ns.load(Ordering::Relaxed),
        })
        .collect();
    timers.sort_unstable_by(|a, b| a.name.cmp(&b.name));
    Snapshot { counters, timers }
}

/// Zeroes every counter and timer. Existing [`Counter`] handles stay
/// valid and keep counting into the zeroed cells.
pub fn reset() {
    let reg = registry();
    for cell in reg.counters.lock().expect("counter registry").values() {
        cell.store(0, Ordering::Relaxed);
    }
    for cell in reg.timers.lock().expect("timer registry").values() {
        cell.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global, so tests that assert on absolute
    /// values (or reset it) must not interleave.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().expect("serial test lock")
    }

    #[test]
    fn counters_accumulate_and_intern() {
        let _guard = serial();
        reset();
        let a = counter("test.reg.a");
        let b = counter("test.reg.a");
        a.add(2);
        b.incr();
        assert_eq!(counter("test.reg.a").get(), 3);
        assert_eq!(snapshot().counter("test.reg.a"), Some(3));
    }

    #[test]
    fn spans_nest_into_paths() {
        let _guard = serial();
        reset();
        {
            let _outer = span("test.outer");
            std::thread::sleep(std::time::Duration::from_millis(1));
            {
                let _inner = span("inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            let _second = span("inner");
        }
        let snap = snapshot();
        assert_eq!(snap.timer("test.outer").unwrap().count, 1);
        let inner = snap.timer("test.outer/inner").unwrap();
        assert_eq!(inner.count, 2);
        assert!(inner.total_ns >= inner.max_ns);
        assert!(inner.min_ns <= inner.max_ns);
        let outer = snap.timer("test.outer").unwrap();
        assert!(outer.total_ns >= inner.total_ns);
    }

    #[test]
    fn explicit_durations_record() {
        let _guard = serial();
        reset();
        record_duration_ns("test.explicit", 5);
        record_duration_ns("test.explicit", 11);
        let t = snapshot();
        let t = t.timer("test.explicit").unwrap();
        assert_eq!((t.count, t.total_ns, t.min_ns, t.max_ns), (2, 16, 5, 11));
        assert_eq!(t.mean_ns(), 8);
    }

    #[test]
    fn reset_zeroes_but_handles_survive() {
        let _guard = serial();
        let c = counter("test.reset");
        c.add(9);
        reset();
        assert_eq!(c.get(), 0);
        c.incr();
        assert_eq!(snapshot().counter("test.reset"), Some(1));
        // zeroed timers drop out of snapshots entirely
        record_duration_ns("test.reset.timer", 1);
        reset();
        assert!(snapshot().timer("test.reset.timer").is_none());
    }

    #[test]
    fn counters_sum_across_threads() {
        let _guard = serial();
        reset();
        let c = counter("test.threads");
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
