//! Golden accuracy: static estimates vs. exact Olken ground truth at
//! small `Params`, under pinned per-kernel thresholds — plus pinned
//! `NotAffine` rejection for every non-affine registry kernel.
//!
//! Two metrics per kernel:
//!
//! * **Histogram intersection** between the static and exact RD
//!   histograms (1.0 = identical log₂-bucket mass placement).
//! * **Miss-ratio-curve max deviation** over an LRU capacity sweep —
//!   the quantity `rdx-cache::predict` consumers actually feel.
//!
//! Thresholds are measured values minus a small safety margin, not
//! aspirations: the conversion shares the dynamic sampler's
//! window-averaging approximation, so kernels whose schedules mix many
//! interval classes (matmuls, sawtooth) legitimately sit lower than
//! the single-class cycles (triad, strided, lru_adversary ≈ exact).

use rdx_groundtruth::ExactProfile;
use rdx_histogram::accuracy::histogram_intersection;
use rdx_histogram::{Binning, MissRatioCurve, RdHistogram};
use rdx_trace::Granularity;
use rdx_workloads::{by_name, Params};

/// Small enough for exact Olken in a test, large enough that every
/// affine kernel completes at least one full period (largest period:
/// matmul at n = 32 → 131 072 accesses).
fn small_params() -> Params {
    Params::default()
        .with_accesses(400_000)
        .with_elements(3 * 32 * 32)
        .with_seed(42)
}

/// `(kernel, min histogram intersection, max MRC deviation)`.
const THRESHOLDS: &[(&str, f64, f64)] = &[
    ("stream_triad", 0.98, 0.02),   // measured 1.0000 / 0.0000
    ("strided", 0.98, 0.02),        // measured 1.0000 / 0.0000
    ("sawtooth", 0.72, 0.28),       // measured 0.7562 / 0.2438 (window averaging)
    ("matmul_naive", 0.97, 0.02),   // measured 0.9944 / 0.0056
    ("matmul_blocked", 0.95, 0.03), // measured 0.9851 / 0.0071
    ("stencil2d", 0.95, 0.18),      // measured 0.9798 / 0.1431 (clamp borders)
    ("stencil3d", 0.87, 0.08),      // measured 0.9048 / 0.0485
    ("lru_adversary", 0.98, 0.02),  // measured 1.0000 / 0.0000
];

fn mrc_max_deviation(a: &RdHistogram, b: &RdHistogram, max_cap: u64) -> f64 {
    let ma = MissRatioCurve::from_rd_histogram(a);
    let mb = MissRatioCurve::from_rd_histogram(b);
    let mut cap = 1u64;
    let mut worst = 0.0f64;
    while cap <= max_cap {
        let d = (ma.miss_ratio(cap) - mb.miss_ratio(cap)).abs();
        worst = worst.max(d);
        cap = (cap * 2).max(cap + 1);
    }
    worst
}

#[test]
fn static_profiles_match_exact_olken() {
    let p = small_params();
    let covered: Vec<&str> = THRESHOLDS.iter().map(|&(n, _, _)| n).collect();
    assert_eq!(
        covered,
        rdx_static::affine_kernels(),
        "every affine kernel pinned"
    );

    let mut failures = Vec::new();
    for &(name, min_intersection, max_dev) in THRESHOLDS {
        let stat = rdx_static::estimate(name, &p).expect(name);
        let spec = by_name(name).expect(name);
        let exact = ExactProfile::measure(spec.stream(&p), Granularity::WORD, Binning::log2());

        let acc = histogram_intersection(stat.rd.as_histogram(), exact.rd.as_histogram())
            .expect("same binning");
        let dev = mrc_max_deviation(&stat.rd, &exact.rd, 2 * p.elements);
        eprintln!("{name}: intersection {acc:.4}, mrc deviation {dev:.4}");
        if acc < min_intersection {
            failures.push(format!(
                "{name}: static-vs-exact intersection {acc:.4} below pinned {min_intersection}"
            ));
        }
        if dev > max_dev {
            failures.push(format!(
                "{name}: MRC max deviation {dev:.4} above pinned {max_dev}"
            ));
        }
        // Cold mass is exact: one full period touches the whole footprint.
        if stat.footprint != exact.distinct_blocks {
            failures.push(format!(
                "{name}: static footprint {} vs exact distinct blocks {}",
                stat.footprint, exact.distinct_blocks
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn not_affine_rejection_pinned_for_every_non_affine_kernel() {
    let expected = [
        "fifo_queue",
        "random_uniform",
        "zipf",
        "gauss_hotset",
        "hash_probe",
        "pointer_chase",
        "bst_search",
        "spmv",
        "sort_merge",
        "phased",
    ];
    assert_eq!(rdx_static::non_affine_kernels(), expected);
    let p = small_params();
    for name in expected {
        match rdx_static::estimate(name, &p) {
            Err(rdx_static::StaticError::NotAffine { kernel, reason }) => {
                assert_eq!(kernel, name);
                assert!(
                    !reason.is_empty(),
                    "{name}: reason must explain the rejection"
                );
            }
            other => panic!("{name}: expected NotAffine, got {other:?}"),
        }
    }
}

/// The miss-ratio floor of a static profile equals the cold fraction —
/// the invariant `rdx-cache::predict` consumers rely on.
#[test]
fn predict_integration_uses_static_histograms() {
    let p = small_params();
    let stat = rdx_static::estimate("stream_triad", &p).unwrap();
    let levels = rdx_cache::hierarchy();
    let preds = rdx_cache::predict::miss_ratios(&stat.rd, &levels, 8);
    assert_eq!(preds.len(), levels.len());
    // triad's footprint (3072 words = 24 KiB) fits in L2/LLC: only cold
    // misses remain there.
    let cold_fraction = stat.footprint as f64 / stat.accesses as f64;
    for lvl in &preds {
        assert!(lvl.miss_ratio >= cold_fraction - 1e-9, "{}", lvl.name);
    }
    let llc = &preds[preds.len() - 1];
    assert!(
        (llc.miss_ratio - cold_fraction).abs() < 1e-3,
        "LLC miss ratio {} should approach the cold floor {cold_fraction}",
        llc.miss_ratio
    );
}
