//! Structural consistency: the IR-derived accounting must match the
//! streams `rdx-workloads` actually generates, exactly.
//!
//! For every affine kernel across a parameter grid (footprints, seeds,
//! and truncation points varied), the static model's access count,
//! store count, and footprint are compared against `TraceStats` of the
//! real generated stream. The footprint identity requires at least one
//! full period (a shorter run has not yet touched everything), so the
//! grid always covers ≥ 1 period while exercising ragged mid-period,
//! mid-nest, and mid-iteration truncations for the store count.

use proptest::prelude::*;
use rdx_trace::{Granularity, TraceStats};
use rdx_workloads::{by_name, Params};

fn assert_consistent(name: &str, elements: u64, seed: u64, periods: u64, ragged: u64) {
    let probe = Params::default()
        .with_accesses(1)
        .with_elements(elements)
        .with_seed(seed);
    let shape = rdx_static::estimate(name, &probe).expect(name);
    let accesses = shape.period * periods + ragged % shape.period.max(1);
    let params = probe.with_accesses(accesses);

    let profile = rdx_static::estimate(name, &params).expect(name);
    let spec = by_name(name).expect("affine kernels are registry members");
    let stats = TraceStats::measure(spec.stream(&params), Granularity::WORD);

    assert_eq!(stats.accesses, accesses, "{name}: stream length");
    assert_eq!(profile.accesses, accesses, "{name}: modeled length");
    assert_eq!(
        profile.stores, stats.stores,
        "{name}: IR store count must be lane-exact at any truncation"
    );
    assert_eq!(
        profile.footprint, stats.distinct_blocks,
        "{name}: IR footprint vs distinct blocks of the real stream"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ir_accounting_matches_generated_streams(
        kernel_idx in 0usize..8,
        elements in 8u64..512,
        seed in any::<u64>(),
        periods in 1u64..3,
        ragged in any::<u64>(),
    ) {
        let name = rdx_static::affine_kernels()[kernel_idx];
        assert_consistent(name, elements, seed, periods, ragged);
    }
}

/// The corners the proptest might miss: minimum footprints, exactly one
/// period, and the tile-overhang (`n % 8 ≠ 0`) blocked matmul.
#[test]
fn pinned_corner_cases() {
    for name in rdx_static::affine_kernels() {
        assert_consistent(name, 1, 42, 1, 0); // kernels clamp to minima
        assert_consistent(name, 257, 7, 2, 12345); // prime footprint
    }
    // n = 12: T = 16 > n exercises the modulo-folded tiles
    assert_consistent("matmul_blocked", 3 * 12 * 12, 3, 1, 99);
}

/// The static path never constructs a stream: profiles are equal for
/// different seeds even where the generated streams differ.
#[test]
fn estimates_are_seed_independent() {
    for name in rdx_static::affine_kernels() {
        let a = rdx_static::estimate(
            name,
            &Params::default()
                .with_accesses(10_000)
                .with_elements(300)
                .with_seed(1),
        )
        .expect(name);
        let b = rdx_static::estimate(
            name,
            &Params::default()
                .with_accesses(10_000)
                .with_elements(300)
                .with_seed(2),
        )
        .expect(name);
        assert_eq!(a.rd, b.rd, "{name}");
        assert_eq!(a.stores, b.stores, "{name}");
    }
}
