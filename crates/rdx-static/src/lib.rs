//! `rdx-static` — trace-free reuse-profile estimation for affine kernels.
//!
//! The dynamic paths in this workspace measure reuse by watching
//! accesses (exactly, via Olken; cheaply, via PMU sampling). This crate
//! computes the same log-bucketed [`RdHistogram`] **without executing a
//! single access**: each affine registry kernel is modeled as a small
//! loop-nest IR ([`ir`]), reuse intervals are derived symbolically by
//! iteration-space counting ([`analysis`]), and the interval classes
//! are pushed through the same footprint-theory conversion the sampler
//! uses. Non-affine kernels are rejected with a typed
//! [`StaticError::NotAffine`] — never a wrong answer.
//!
//! ```
//! use rdx_workloads::Params;
//!
//! let params = Params::default().with_accesses(100_000).with_elements(3_000);
//! let profile = rdx_static::estimate("stream_triad", &params).unwrap();
//! assert_eq!(profile.footprint, 3_000);
//! assert!(rdx_static::estimate("pointer_chase", &params).is_err());
//! ```
//!
//! The three-way accuracy experiment (static vs. RDX-sampled vs. exact
//! Olken) lives in `rdx-bench::exp_static`; the `rdx static` CLI
//! subcommand feeds estimates into `rdx-cache::predict` for trace-free
//! miss-ratio what-ifs.
//!
//! [`RdHistogram`]: rdx_histogram::RdHistogram

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod coverage;
pub mod ir;
pub mod models;

pub use analysis::{AnalysisError, KernelModel, ReuseClass, StaticProfile};
pub use coverage::{affine_kernels, is_affine, lookup, non_affine_kernels, Coverage, Model};

use rdx_workloads::Params;
use std::fmt;

/// Why a static estimate could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StaticError {
    /// The workload exists but its access pattern is not an affine
    /// function of loop indices; a static profile would be wrong.
    NotAffine {
        /// The workload's registry name.
        kernel: String,
        /// What breaks the affine structure.
        reason: &'static str,
    },
    /// The name matches no workload in the registry.
    UnknownKernel {
        /// The rejected name.
        name: String,
    },
    /// The model exists but failed derivation — an internal bug, since
    /// registry models are derivable by construction.
    Internal(AnalysisError),
}

impl fmt::Display for StaticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaticError::NotAffine { kernel, reason } => {
                write!(f, "workload '{kernel}' is not affine: {reason}")
            }
            StaticError::UnknownKernel { name } => {
                write!(f, "unknown workload '{name}'")
            }
            StaticError::Internal(e) => write!(f, "static model error: {e}"),
        }
    }
}

impl std::error::Error for StaticError {}

impl From<AnalysisError> for StaticError {
    fn from(e: AnalysisError) -> Self {
        StaticError::Internal(e)
    }
}

/// Statically estimates the reuse profile of `kernel` at `params`.
///
/// Executes zero accesses: the result is a closed-form function of the
/// kernel's loop structure and `params` (the `rdx.static.estimates` /
/// `rdx.static.rejected` counters are the only observable side effect,
/// and only under the `metrics` feature).
///
/// # Errors
///
/// * [`StaticError::UnknownKernel`] for names outside the registry.
/// * [`StaticError::NotAffine`] for non-affine workloads.
/// * [`StaticError::Internal`] if a model fails derivation (a bug).
pub fn estimate(kernel: &str, params: &Params) -> Result<StaticProfile, StaticError> {
    match coverage::lookup(kernel) {
        None => {
            rdx_metrics::counter("rdx.static.rejected").incr();
            Err(StaticError::UnknownKernel {
                name: kernel.to_string(),
            })
        }
        Some(Coverage {
            model: Model::NonAffine(reason),
            name,
        }) => {
            rdx_metrics::counter("rdx.static.rejected").incr();
            Err(StaticError::NotAffine {
                kernel: (*name).to_string(),
                reason,
            })
        }
        Some(Coverage {
            model: Model::Affine(build),
            ..
        }) => {
            let model = build(params);
            let profile = analysis::estimate_profile(&model, params.accesses)?;
            rdx_metrics::counter("rdx.static.estimates").incr();
            Ok(profile)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params::default().with_accesses(50_000).with_elements(1024)
    }

    #[test]
    fn estimates_every_affine_kernel() {
        for name in affine_kernels() {
            let p = estimate(name, &params()).expect(name);
            assert_eq!(p.kernel, name);
            assert_eq!(p.accesses, 50_000);
            assert!(p.footprint > 0, "{name}");
            assert!(p.period > 0, "{name}");
            assert!(
                (p.rd.total_weight() - 50_000.0).abs() < 1e-6,
                "{name}: histogram mass must equal the access count"
            );
        }
    }

    #[test]
    fn rejects_every_non_affine_kernel_with_typed_error() {
        for name in non_affine_kernels() {
            match estimate(name, &params()) {
                Err(StaticError::NotAffine { kernel, reason }) => {
                    assert_eq!(kernel, name);
                    assert!(!reason.is_empty());
                }
                other => panic!("{name}: expected NotAffine, got {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_kernel_is_its_own_error() {
        assert_eq!(
            estimate("warp_drive", &params()),
            Err(StaticError::UnknownKernel {
                name: "warp_drive".to_string()
            })
        );
    }

    #[test]
    fn errors_display_cleanly() {
        let e = estimate("zipf", &params()).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("zipf") && msg.contains("not affine"), "{msg}");
        let u = estimate("nope", &params()).unwrap_err();
        assert!(u.to_string().contains("unknown workload"), "{u}");
    }

    #[test]
    fn profiles_are_deterministic() {
        let a = estimate("matmul_naive", &params()).unwrap();
        let b = estimate("matmul_naive", &params()).unwrap();
        assert_eq!(a.rd, b.rd);
        assert_eq!(a.rt, b.rt);
        assert_eq!(a.footprint, b.footprint);
    }

    #[test]
    fn seed_does_not_change_affine_estimates() {
        let p1 = params().with_seed(1);
        let p2 = params().with_seed(999);
        let a = estimate("stencil2d", &p1).unwrap();
        let b = estimate("stencil2d", &p2).unwrap();
        assert_eq!(a.rd, b.rd);
    }
}
