//! Symbolic reuse-interval derivation and profile assembly.
//!
//! # Counting method
//!
//! The schedule of a [`LoopNest`] repeated forever is fully periodic, so
//! every element's touch positions form a finite set of arithmetic
//! patterns. The engine groups references that address the same array
//! through identical affine coordinates (differing only in lane and
//! constant offset) and derives, per *element slot*, the sorted schedule
//! of touch positions within one period:
//!
//! * **Group constants.** Reference `r` at lane `l_r` with offset shift
//!   `δ_r` touches a fixed element at access position `c_r = l_r − L ·
//!   Σ_d δ_{r,d} · step_d` relative to the group base (`L` = accesses
//!   per innermost iteration, `step_d` = iteration stride of the loop
//!   driving dimension `d`). Gaps between consecutive sorted `c_r` are
//!   the *intra-iteration* reuse intervals.
//! * **Free-loop lattice.** Loops with zero coefficient in every
//!   coordinate of the group re-touch the same element. Walking the
//!   free loops in mixed-radix order, consecutive touches are separated
//!   by `Δm_i = s_i − Σ_{l<i} s_l (e_l − 1)` innermost iterations (free
//!   strides `s` sorted ascending), with multiplicity `(e_i − 1) ·
//!   Π_{l>i} e_l` per period, plus one period-wrap gap.
//! * Each lattice gap of `Δm` iterations separates the *last* group
//!   constant from the *first* of the next touch burst, so the access
//!   interval is `L · Δm − (c_max − c_min)`.
//!
//! Every touch has exactly one successor in the infinite schedule, so
//! the class weights per period sum to the period's access count — an
//! invariant the engine checks.
//!
//! Intervals are *reuse times* (index differences). Conversion to reuse
//! distances deliberately reuses the dynamic path's footprint-theory
//! machinery ([`WeightedFootprint`]): `d = fp(t+1) − 1` with the curve
//! built from the derived interval classes and the footprint as cold
//! mass. The static estimate therefore shares the sampler's
//! window-averaging approximation — and its documented error modes —
//! while executing **zero** accesses.
//!
//! # Error sources
//!
//! * Window averaging in `fp` (exact only for single-class schedules).
//! * Clamped stencil borders are modeled with the interior schedule
//!   (mass-preserving, interval-approximate near edges).
//! * `matmul_blocked` with `n % tile ≠ 0` folds modulo `n`; the engine
//!   counts `T² > n²` element slots whose aliased reuses it ignores.
//! * Truncation: class weights assume steady state, so runs shorter
//!   than one period under-observe long intervals.

use crate::ir::{IrError, KernelIr, LoopNest};
use rdx_core::convert::WeightedFootprint;
use rdx_histogram::{Binning, RdHistogram, ReuseDistance, ReuseTime, RtHistogram};
use std::fmt;

/// One symbolic reuse-interval class: `count` touch pairs per period
/// separated by exactly `delta` accesses (index difference ≥ 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReuseClass {
    /// Access-index difference between the pair (≥ 1).
    pub delta: u64,
    /// Pairs per period with this interval.
    pub count: f64,
}

/// The engine cannot derive intervals for this IR (a model bug: the
/// registry models are all derivable by construction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// Structural defect reported by the IR layer.
    Ir(IrError),
    /// The engine handles exactly one nest unless classes are explicit.
    MultiNest,
    /// Offsets differ within a group but no unit-coefficient loop
    /// identifies the shift step for some dimension.
    AmbiguousShift,
    /// Two references of a group collapse to the same schedule constant.
    DuplicateConstant,
    /// A derived interval came out non-positive.
    NonPositiveInterval,
    /// Class weights failed to sum to the period's access count.
    MassMismatch,
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Ir(e) => write!(f, "{e}"),
            AnalysisError::MultiNest => {
                write!(f, "interval derivation requires a single loop nest")
            }
            AnalysisError::AmbiguousShift => {
                write!(
                    f,
                    "group offsets differ but no unit-coefficient loop fixes the step"
                )
            }
            AnalysisError::DuplicateConstant => {
                write!(f, "two group references share one schedule constant")
            }
            AnalysisError::NonPositiveInterval => {
                write!(f, "derived a non-positive reuse interval")
            }
            AnalysisError::MassMismatch => {
                write!(f, "class weights do not sum to the period access count")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<IrError> for AnalysisError {
    fn from(e: IrError) -> Self {
        AnalysisError::Ir(e)
    }
}

/// Derives the reuse-interval classes of one nest's periodic schedule.
///
/// # Errors
///
/// [`AnalysisError`] when the nest falls outside the engine's affine
/// class (model bug; never user input).
pub fn derive_classes(nest: &LoopNest) -> Result<Vec<ReuseClass>, AnalysisError> {
    if nest.extents.is_empty() || nest.refs.is_empty() || nest.extents.contains(&0) {
        return Err(AnalysisError::Ir(IrError::EmptyNest));
    }
    let lanes = nest.refs.len() as u64;
    let p_iters = nest.iterations();

    // Group refs by (array, coordinate shape + coefficients); members
    // differ only in lane, constant offsets, and load/store role.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (idx, r) in nest.refs.iter().enumerate() {
        let same_group = |&other: &usize| {
            let o = &nest.refs[other];
            o.array == r.array
                && o.coords.len() == r.coords.len()
                && o.coords
                    .iter()
                    .zip(&r.coords)
                    .all(|(a, b)| a.pitch == b.pitch && a.bound == b.bound && a.coeffs == b.coeffs)
        };
        match groups
            .iter_mut()
            .find(|g| g.first().is_some_and(same_group))
        {
            Some(g) => g.push(idx),
            None => groups.push(vec![idx]),
        }
    }

    let mut classes: Vec<ReuseClass> = Vec::new();
    let mut mass = 0u64; // pairs accounted for, per period
    for group in &groups {
        let base = &nest.refs[group[0]];

        // Schedule constants c_r = lane − L · Σ_d δ_d · step_d.
        let mut consts: Vec<i64> = Vec::with_capacity(group.len());
        for &idx in group {
            let r = &nest.refs[idx];
            let mut shift: i64 = 0;
            for (d, c) in r.coords.iter().enumerate() {
                let delta = c.offset - base.coords[d].offset;
                if delta == 0 {
                    continue;
                }
                // The loop with unit coefficient advances this
                // coordinate by 1 per step of its stride.
                let step = c
                    .coeffs
                    .iter()
                    .enumerate()
                    .filter(|&(_, &co)| co == 1)
                    .map(|(j, _)| nest.loop_stride(j))
                    .min();
                let Some(step) = step else {
                    return Err(AnalysisError::AmbiguousShift);
                };
                shift -= delta.saturating_mul(step as i64);
            }
            consts.push(idx as i64 + (lanes as i64).saturating_mul(shift));
        }
        consts.sort_unstable();
        if consts.windows(2).any(|w| w[0] == w[1]) {
            return Err(AnalysisError::DuplicateConstant);
        }
        let span_c = (consts[consts.len() - 1] - consts[0]) as u64;

        // Free loops: zero coefficient in every coordinate of the group.
        let free: Vec<usize> = (0..nest.extents.len())
            .filter(|&j| {
                base.coords
                    .iter()
                    .all(|c| c.coeffs.get(j).copied().unwrap_or(0) == 0)
            })
            .collect();
        let touches: u64 = free
            .iter()
            .fold(1u64, |acc, &j| acc.saturating_mul(nest.extents[j]));
        let slots = p_iters / touches.max(1);

        // Lattice gaps between touch bursts, in innermost iterations:
        // free strides sorted ascending (innermost digit first).
        let mut digits: Vec<(u64, u64)> = free
            .iter()
            .filter(|&&j| nest.extents[j] > 1)
            .map(|&j| (nest.loop_stride(j), nest.extents[j]))
            .collect();
        digits.sort_unstable();
        let mut lattice: Vec<(u64, u64)> = Vec::new(); // (Δm iters, count/slot)
        let mut inner_span = 0u64; // Σ s_l (e_l − 1) of lower digits
        let mut outer_reps = touches; // Π e_l of this and higher digits
        for &(s, e) in &digits {
            outer_reps /= e;
            if s <= inner_span {
                return Err(AnalysisError::NonPositiveInterval);
            }
            lattice.push((s - inner_span, (e - 1).saturating_mul(outer_reps)));
            inner_span = inner_span.saturating_add(s.saturating_mul(e - 1));
        }
        if p_iters <= inner_span {
            return Err(AnalysisError::NonPositiveInterval);
        }
        lattice.push((p_iters - inner_span, 1)); // period wrap

        // Intra-burst gaps between consecutive schedule constants.
        for w in consts.windows(2) {
            let delta = (w[1] - w[0]) as u64;
            let count = touches.saturating_mul(slots);
            classes.push(ReuseClass {
                delta,
                count: count as f64,
            });
            mass = mass.saturating_add(count);
        }
        // Burst-to-burst gaps: L·Δm minus the constant span. Each burst
        // ends once, so the per-slot multiplicity is the lattice count
        // regardless of how many refs the group has.
        for &(dm, cnt) in &lattice {
            let gap = lanes.saturating_mul(dm);
            if gap <= span_c {
                return Err(AnalysisError::NonPositiveInterval);
            }
            let count = cnt.saturating_mul(slots);
            classes.push(ReuseClass {
                delta: gap - span_c,
                count: count as f64,
            });
            mass = mass.saturating_add(count);
        }
    }

    if mass != p_iters.saturating_mul(lanes) {
        return Err(AnalysisError::MassMismatch);
    }
    Ok(classes)
}

/// How a model's interval classes are obtained.
#[derive(Debug, Clone)]
pub enum ClassSource {
    /// Run the generic engine over the (single) nest.
    Derived,
    /// The model supplies closed-form classes (multi-nest kernels).
    Explicit(Vec<ReuseClass>),
}

/// A kernel's static model: structural IR plus its interval classes.
#[derive(Debug, Clone)]
pub struct KernelModel {
    /// The structural IR (periods, stores, footprint).
    pub ir: KernelIr,
    /// Where the reuse-interval classes come from.
    pub source: ClassSource,
}

impl KernelModel {
    /// The model's reuse-interval classes for one period.
    ///
    /// # Errors
    ///
    /// [`AnalysisError`] when derivation fails (model bug).
    pub fn classes(&self) -> Result<Vec<ReuseClass>, AnalysisError> {
        match &self.source {
            ClassSource::Explicit(c) => Ok(c.clone()),
            ClassSource::Derived => match self.ir.nests.as_slice() {
                [nest] => derive_classes(nest),
                _ => Err(AnalysisError::MultiNest),
            },
        }
    }
}

/// A statically estimated reuse profile: the same histogram shapes the
/// dynamic paths produce, computed without executing a single access.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticProfile {
    /// Registry name of the modeled kernel.
    pub kernel: &'static str,
    /// Estimated reuse-distance histogram (log₂ bins, cold = ∞ bucket).
    pub rd: RdHistogram,
    /// Derived reuse-time histogram (exact up to boundary effects).
    pub rt: RtHistogram,
    /// Accesses the modeled run would perform (`params.accesses`).
    pub accesses: u64,
    /// Distinct 8-byte elements touched per period (exact from the IR).
    pub footprint: u64,
    /// Accesses in one full period of the schedule.
    pub period: u64,
    /// Exact store count in the truncated run.
    pub stores: u64,
    /// Number of distinct symbolic interval classes.
    pub classes: usize,
}

/// Assembles a [`StaticProfile`] from a model at the given run length.
///
/// Per-period class counts are scaled to the run's finite-reuse budget
/// (`accesses − footprint`); the footprint supplies the cold mass.
///
/// # Errors
///
/// [`AnalysisError`] when the IR is structurally unsound or interval
/// derivation fails.
pub fn estimate_profile(
    model: &KernelModel,
    accesses: u64,
) -> Result<StaticProfile, AnalysisError> {
    let footprint = model.ir.footprint()?;
    let period = model.ir.period_accesses();
    let classes = model.classes()?;
    let cold = footprint.min(accesses) as f64;
    let finite_budget = accesses.saturating_sub(footprint) as f64;
    let class_mass: f64 = classes.iter().map(|c| c.count).sum();
    let scale = if class_mass > 0.0 {
        finite_budget / class_mass
    } else {
        0.0
    };
    let pairs: Vec<(u64, f64)> = classes
        .iter()
        .filter(|c| c.delta > 0)
        .map(|c| (c.delta - 1, c.count * scale))
        .collect();
    let curve = WeightedFootprint::from_sampled(accesses, cold, &pairs);
    let mut rd = RdHistogram::new(Binning::log2());
    let mut rt = RtHistogram::new(Binning::log2());
    for &(t, w) in &pairs {
        if w > 0.0 {
            rd.record(curve.distance_of(t), w);
            rt.record(ReuseTime::finite(t), w);
        }
    }
    rd.record(ReuseDistance::INFINITE, cold);
    rt.record(ReuseTime::INFINITE, cold);
    Ok(StaticProfile {
        kernel: model.ir.name,
        rd,
        rt,
        accesses,
        footprint,
        period,
        stores: model.ir.stores(accesses),
        classes: pairs.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ArrayRef, Coord, Wrap};

    fn cycle_nest(n: u64, lanes: usize) -> LoopNest {
        LoopNest {
            extents: vec![n],
            refs: (0..lanes)
                .map(|l| ArrayRef {
                    array: l as u64,
                    store: false,
                    coords: vec![Coord {
                        pitch: 1,
                        bound: n,
                        coeffs: vec![1],
                        offset: 0,
                        wrap: Wrap::None,
                    }],
                })
                .collect(),
        }
    }

    #[test]
    fn pure_cycle_single_class() {
        let classes = derive_classes(&cycle_nest(100, 1)).unwrap();
        assert_eq!(
            classes,
            vec![ReuseClass {
                delta: 100,
                count: 100.0
            }]
        );
    }

    #[test]
    fn multi_lane_cycle_each_array_period_apart() {
        let classes = derive_classes(&cycle_nest(10, 3)).unwrap();
        // three groups (different arrays), each a pure cycle of Δ = 30
        assert_eq!(classes.len(), 3);
        for c in &classes {
            assert_eq!(c.delta, 30);
            assert_eq!(c.count, 10.0);
        }
    }

    #[test]
    fn free_loop_lattice_gaps() {
        // for i in 0..4 { for j in 0..5 { touch a[i] } } repeated:
        // per element: 4 touches Δ=1... no — a[i] touched once per j.
        // refs: a[i] with free loop j (stride 1, extent 5):
        // gaps Δm=1 ×4 and wrap; L=1.
        let nest = LoopNest {
            extents: vec![4, 5],
            refs: vec![ArrayRef {
                array: 0,
                store: false,
                coords: vec![Coord {
                    pitch: 1,
                    bound: 4,
                    coeffs: vec![1, 0],
                    offset: 0,
                    wrap: Wrap::None,
                }],
            }],
        };
        let mut classes = derive_classes(&nest).unwrap();
        classes.sort_by_key(|c| c.delta);
        // per slot: 4 immediate repeats (Δ=1) + wrap Δ = 20 − 4 = 16
        assert_eq!(
            classes,
            vec![
                ReuseClass {
                    delta: 1,
                    count: 16.0
                },
                ReuseClass {
                    delta: 16,
                    count: 4.0
                },
            ]
        );
    }

    #[test]
    fn shifted_pair_splits_schedule() {
        // refs a[i] and a[i−1]: the shifted ref re-touches one
        // iteration later → constants {0, 1 + L·1·?}: step = 1, shift
        // = +1 → c = 1 + 2 = 3... verify via mass only.
        let n = 8;
        let mut nest = cycle_nest(n, 1);
        let mut second = nest.refs[0].clone();
        second.array = 0;
        second.coords[0].offset = -1;
        second.coords[0].wrap = Wrap::Clamp;
        nest.refs.push(second);
        let classes = derive_classes(&nest).unwrap();
        let total: f64 = classes.iter().map(|c| c.count).sum();
        assert_eq!(total, 2.0 * n as f64);
        assert!(classes.iter().all(|c| c.delta >= 1));
    }

    #[test]
    fn profile_of_pure_cycle_is_exact() {
        let model = KernelModel {
            ir: KernelIr {
                name: "cycle",
                nests: vec![cycle_nest(64, 1)],
            },
            source: ClassSource::Derived,
        };
        let p = estimate_profile(&model, 6400).unwrap();
        assert_eq!(p.footprint, 64);
        assert_eq!(p.period, 64);
        assert_eq!(p.stores, 0);
        // every finite reuse lands at distance 63 with weight 6400−64
        assert_eq!(p.rd.cold_weight(), 64.0);
        assert!((p.rd.as_histogram().weight_for(63) - 6336.0).abs() < 1e-6);
    }

    #[test]
    fn run_shorter_than_footprint_is_all_cold() {
        let model = KernelModel {
            ir: KernelIr {
                name: "cycle",
                nests: vec![cycle_nest(1000, 1)],
            },
            source: ClassSource::Derived,
        };
        let p = estimate_profile(&model, 100).unwrap();
        assert_eq!(p.rd.cold_weight(), 100.0);
        assert_eq!(p.rd.total_weight(), 100.0);
    }
}
