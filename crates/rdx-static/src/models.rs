//! Static models of the affine registry kernels.
//!
//! Each builder mirrors the corresponding generator in
//! `rdx-workloads::kernels` *structurally*: same derived sizes, same
//! loop order, same lane order, same store lanes. The structural
//! consistency proptest holds these models to the generated streams
//! (access counts, store counts, footprints must match exactly), so a
//! drift in either side fails the build.

use crate::analysis::{ClassSource, KernelModel, ReuseClass};
use crate::ir::{ArrayRef, Coord, KernelIr, LoopNest, Wrap};
use rdx_workloads::Params;

fn coord(pitch: u64, bound: u64, coeffs: &[i64], offset: i64, wrap: Wrap) -> Coord {
    Coord {
        pitch,
        bound,
        coeffs: coeffs.to_vec(),
        offset,
        wrap,
    }
}

fn load(array: u64, coords: Vec<Coord>) -> ArrayRef {
    ArrayRef {
        array,
        store: false,
        coords,
    }
}

fn store(array: u64, coords: Vec<Coord>) -> ArrayRef {
    ArrayRef {
        array,
        store: true,
        coords,
    }
}

fn derived(name: &'static str, nest: LoopNest) -> KernelModel {
    KernelModel {
        ir: KernelIr {
            name,
            nests: vec![nest],
        },
        source: ClassSource::Derived,
    }
}

/// `a[i] = b[i] + s·c[i]` over three arrays: lanes load b, load c,
/// store a, advancing `i` cyclically.
#[must_use]
pub fn stream_triad(p: &Params) -> KernelModel {
    let n = (p.elements / 3).max(1);
    let idx = || coord(1, n, &[1], 0, Wrap::None);
    derived(
        "stream_triad",
        LoopNest {
            extents: vec![n],
            refs: vec![
                load(1, vec![idx()]),
                load(2, vec![idx()]),
                store(0, vec![idx()]),
            ],
        },
    )
}

/// Stride-8 sweeps with rotating offset. The eight passes form a
/// permutation of `[0, n)` in which every element occupies a fixed
/// position, so the schedule is reuse-equivalent to a pure cycle of
/// length `n` — which is what this reduced IR encodes.
#[must_use]
pub fn strided(p: &Params) -> KernelModel {
    let n = p.elements.max(8);
    derived(
        "strided",
        LoopNest {
            extents: vec![n],
            refs: vec![load(0, vec![coord(1, n, &[1], 0, Wrap::None)])],
        },
    )
}

/// Triangular sweep `0..n−1, n−1..0` (both turnaround elements are
/// touched twice per period because the generator accesses before it
/// flips direction). Two nests — an ascending and a descending sweep —
/// with closed-form interval classes: element `i` sits at position `i`
/// ascending and `2n−1−i` descending, giving per-period intervals
/// `2n−1−2i` (turn at the top) and `2i+1` (turn at the bottom).
#[must_use]
pub fn sawtooth(p: &Params) -> KernelModel {
    let n = p.elements.max(2);
    let up = LoopNest {
        extents: vec![n],
        refs: vec![load(0, vec![coord(1, n, &[1], 0, Wrap::None)])],
    };
    let down = LoopNest {
        extents: vec![n],
        refs: vec![load(0, vec![coord(1, n, &[-1], n as i64 - 1, Wrap::None)])],
    };
    let mut classes = Vec::with_capacity(2 * n as usize);
    for i in 0..n {
        classes.push(ReuseClass {
            delta: 2 * n - 1 - 2 * i,
            count: 1.0,
        });
        classes.push(ReuseClass {
            delta: 2 * i + 1,
            count: 1.0,
        });
    }
    KernelModel {
        ir: KernelIr {
            name: "sawtooth",
            nests: vec![up, down],
        },
        source: ClassSource::Explicit(classes),
    }
}

/// Triple-loop matmul, `k` innermost: lanes A[i][k], B[k][j],
/// C[i][j] load, C[i][j] store.
#[must_use]
pub fn matmul_naive(p: &Params) -> KernelModel {
    let n = (((p.elements / 3) as f64).sqrt() as u64).max(2);
    let row = |l: usize| {
        let mut c = [0i64; 3];
        c[l] = 1;
        c
    };
    let dim = |pitch: u64, driver: usize| coord(pitch, n, &row(driver), 0, Wrap::None);
    derived(
        "matmul_naive",
        LoopNest {
            extents: vec![n, n, n], // i, j, k
            refs: vec![
                load(0, vec![dim(n, 0), dim(1, 2)]), // A[i][k]
                load(1, vec![dim(n, 2), dim(1, 1)]), // B[k][j]
                load(2, vec![dim(n, 0), dim(1, 1)]), // C[i][j]
                store(2, vec![dim(n, 0), dim(1, 1)]),
            ],
        },
    )
}

/// 8×8-tiled matmul: six loops (ti, tj, tk, i, j, k), global indices
/// `g• = (t•·tile + •) mod n`. When `n % tile ≠ 0` the modulo folds the
/// overhang tiles back onto the front rows; the engine then counts
/// `T² ≥ n²` element slots and ignores the aliased extra reuses (a
/// documented approximation — the footprint itself stays exact).
#[must_use]
pub fn matmul_blocked(p: &Params) -> KernelModel {
    let n = (((p.elements / 3) as f64).sqrt() as u64).max(2);
    let t = 8u64.min(n);
    let tiles = n.div_ceil(t);
    // coefficient layout over (ti, tj, tk, i, j, k)
    let g = |axis: usize| {
        let mut c = [0i64; 6];
        c[axis] = t as i64;
        c[axis + 3] = 1;
        c
    };
    let dim = |pitch: u64, axis: usize| coord(pitch, n, &g(axis), 0, Wrap::Modulo);
    derived(
        "matmul_blocked",
        LoopNest {
            extents: vec![tiles, tiles, tiles, t, t, t],
            refs: vec![
                load(0, vec![dim(n, 0), dim(1, 2)]), // A[gi][gk]
                load(1, vec![dim(n, 2), dim(1, 1)]), // B[gk][gj]
                load(2, vec![dim(n, 0), dim(1, 1)]), // C[gi][gj]
                store(2, vec![dim(n, 0), dim(1, 1)]),
            ],
        },
    )
}

/// 5-point 2-D stencil: five in-grid loads (center, N, S, W, E with
/// clamped borders) and one out-grid store per cell, `j` innermost.
#[must_use]
pub fn stencil2d(p: &Params) -> KernelModel {
    let g = (((p.elements / 2) as f64).sqrt() as u64).max(2);
    let cell = |dr: i64, dc: i64| {
        let wrap = |d: i64| if d == 0 { Wrap::None } else { Wrap::Clamp };
        vec![
            coord(g, g, &[1, 0], dr, wrap(dr)),
            coord(1, g, &[0, 1], dc, wrap(dc)),
        ]
    };
    derived(
        "stencil2d",
        LoopNest {
            extents: vec![g, g], // i, j
            refs: vec![
                load(0, cell(0, 0)),
                load(0, cell(-1, 0)),
                load(0, cell(1, 0)),
                load(0, cell(0, -1)),
                load(0, cell(0, 1)),
                store(1, cell(0, 0)),
            ],
        },
    )
}

/// 7-point 3-D stencil: center plus ±1 along each axis (clamped), and
/// an out-grid store, `z` innermost.
#[must_use]
pub fn stencil3d(p: &Params) -> KernelModel {
    let g = (((p.elements / 2) as f64).cbrt() as u64).max(2);
    let cell = |dx: i64, dy: i64, dz: i64| {
        let wrap = |d: i64| if d == 0 { Wrap::None } else { Wrap::Clamp };
        vec![
            coord(g * g, g, &[1, 0, 0], dx, wrap(dx)),
            coord(g, g, &[0, 1, 0], dy, wrap(dy)),
            coord(1, g, &[0, 0, 1], dz, wrap(dz)),
        ]
    };
    derived(
        "stencil3d",
        LoopNest {
            extents: vec![g, g, g], // x, y, z
            refs: vec![
                load(0, cell(0, 0, 0)),
                load(0, cell(-1, 0, 0)),
                load(0, cell(1, 0, 0)),
                load(0, cell(0, -1, 0)),
                load(0, cell(0, 1, 0)),
                load(0, cell(0, 0, -1)),
                load(0, cell(0, 0, 1)),
                store(1, cell(0, 0, 0)),
            ],
        },
    )
}

/// Cyclic scan of the whole footprint — trivially affine; every reuse
/// sits at distance `n − 1`, the LRU worst case.
#[must_use]
pub fn lru_adversary(p: &Params) -> KernelModel {
    let n = p.elements.max(2);
    derived(
        "lru_adversary",
        LoopNest {
            extents: vec![n],
            refs: vec![load(0, vec![coord(1, n, &[1], 0, Wrap::None)])],
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(accesses: u64, elements: u64) -> Params {
        Params::default()
            .with_accesses(accesses)
            .with_elements(elements)
    }

    #[test]
    fn model_periods_and_footprints() {
        let p = params(1_000_000, 3 * 16 * 16);
        let mm = matmul_naive(&p); // n = 16
        assert_eq!(mm.ir.period_accesses(), 4 * 16 * 16 * 16);
        assert_eq!(mm.ir.footprint().unwrap(), 3 * 16 * 16);

        let st = stencil2d(&params(1_000_000, 2 * 12 * 12)); // g = 12
        assert_eq!(st.ir.period_accesses(), 6 * 12 * 12);
        assert_eq!(st.ir.footprint().unwrap(), 2 * 12 * 12);

        let tri = stream_triad(&params(1000, 300)); // n = 100
        assert_eq!(tri.ir.period_accesses(), 300);
        assert_eq!(tri.ir.footprint().unwrap(), 300);
    }

    #[test]
    fn every_model_derives_classes() {
        let p = params(100_000, 512);
        for build in [
            stream_triad,
            strided,
            sawtooth,
            matmul_naive,
            matmul_blocked,
            stencil2d,
            stencil3d,
            lru_adversary,
        ] {
            let m = build(&p);
            let classes = m.classes().expect(m.ir.name);
            assert!(!classes.is_empty(), "{}", m.ir.name);
            let mass: f64 = classes.iter().map(|c| c.count).sum();
            assert_eq!(
                mass,
                m.ir.period_accesses() as f64,
                "{}: class mass must equal the period",
                m.ir.name
            );
            assert!(classes.iter().all(|c| c.delta >= 1), "{}", m.ir.name);
        }
    }

    #[test]
    fn sawtooth_turnaround_classes() {
        let m = sawtooth(&params(1000, 4)); // n = 4, period 8
        let ClassSource::Explicit(classes) = &m.source else {
            panic!("sawtooth supplies explicit classes");
        };
        // element 3 (top turnaround): intervals 1 and 7; element 0: 7 and 1
        assert!(classes.contains(&ReuseClass {
            delta: 1,
            count: 1.0
        }));
        assert!(classes.contains(&ReuseClass {
            delta: 7,
            count: 1.0
        }));
        assert_eq!(classes.len(), 8);
    }

    #[test]
    fn blocked_handles_overhang_tiles() {
        // n = 12, t = 8, tiles = 2, T = 16 > n: modulo folding
        let p = params(1_000_000, 3 * 12 * 12);
        let m = matmul_blocked(&p);
        assert_eq!(m.ir.footprint().unwrap(), 3 * 12 * 12);
        assert!(m.classes().is_ok());
    }
}
