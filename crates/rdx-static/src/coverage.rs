//! The coverage registry: every workload in `rdx-workloads::registry`
//! is either affine (with a static model) or explicitly non-affine.
//!
//! The `registry-coverage` lint in `rdx-lint` scans the `affine!` /
//! `non_affine!` invocations below and cross-checks them against the
//! `spec!` entries in the workload registry, so the two lists can never
//! silently drift: adding a workload without deciding its static story
//! — or keeping a marker for a deleted workload — fails CI.

use crate::analysis::KernelModel;
use rdx_workloads::Params;

/// A workload's static-analysis status.
#[derive(Clone, Copy)]
pub enum Model {
    /// Affine: the builder produces the kernel's static model.
    Affine(fn(&Params) -> KernelModel),
    /// Non-affine: estimation is rejected, with this reason.
    NonAffine(&'static str),
}

/// One coverage entry: a registry workload name and its status.
#[derive(Clone, Copy)]
pub struct Coverage {
    /// Workload name, identical to the registry spelling.
    pub name: &'static str,
    /// Affine model or non-affine marker.
    pub model: Model,
}

macro_rules! affine {
    ($name:ident) => {
        Coverage {
            name: stringify!($name),
            model: Model::Affine(crate::models::$name),
        }
    };
}

macro_rules! non_affine {
    ($name:ident, $why:literal) => {
        Coverage {
            name: stringify!($name),
            model: Model::NonAffine($why),
        }
    };
}

/// Coverage for the full 18-kernel registry, in registry order.
pub const COVERAGE: &[Coverage] = &[
    affine!(stream_triad),
    affine!(strided),
    affine!(sawtooth),
    non_affine!(
        fifo_queue,
        "producer/consumer cursors advance on run-time state, not loop indices"
    ),
    non_affine!(random_uniform, "RNG-driven uniform addressing"),
    non_affine!(zipf, "RNG-driven Zipf popularity sampling"),
    non_affine!(gauss_hotset, "RNG-driven gaussian hot set with drift"),
    non_affine!(
        hash_probe,
        "hashed slots and geometric probe lengths from the RNG"
    ),
    non_affine!(
        pointer_chase,
        "addresses follow a data-dependent random permutation"
    ),
    non_affine!(bst_search, "tree descent directions drawn from the RNG"),
    non_affine!(spmv, "random gathers into the dense vector"),
    affine!(matmul_naive),
    affine!(matmul_blocked),
    affine!(stencil2d),
    affine!(stencil3d),
    non_affine!(
        sort_merge,
        "merge cursors depend on the doubling run length"
    ),
    non_affine!(
        phased,
        "RNG-driven accesses inside schedule-dependent hot sets"
    ),
    affine!(lru_adversary),
];

/// Looks up a workload's coverage entry by registry name.
#[must_use]
pub fn lookup(name: &str) -> Option<&'static Coverage> {
    COVERAGE.iter().find(|c| c.name == name)
}

/// True when the workload has a static model.
#[must_use]
pub fn is_affine(name: &str) -> bool {
    matches!(
        lookup(name),
        Some(Coverage {
            model: Model::Affine(_),
            ..
        })
    )
}

/// Names of all affine workloads, in registry order.
#[must_use]
pub fn affine_kernels() -> Vec<&'static str> {
    COVERAGE
        .iter()
        .filter(|c| matches!(c.model, Model::Affine(_)))
        .map(|c| c.name)
        .collect()
}

/// Names of all non-affine workloads, in registry order.
#[must_use]
pub fn non_affine_kernels() -> Vec<&'static str> {
    COVERAGE
        .iter()
        .filter(|c| matches!(c.model, Model::NonAffine(_)))
        .map(|c| c.name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_matches_registry_exactly() {
        let registry: Vec<&str> = rdx_workloads::suite().iter().map(|w| w.name).collect();
        let covered: Vec<&str> = COVERAGE.iter().map(|c| c.name).collect();
        assert_eq!(covered, registry, "coverage must track the registry 1:1");
    }

    #[test]
    fn affine_split_is_stable() {
        assert_eq!(
            affine_kernels(),
            [
                "stream_triad",
                "strided",
                "sawtooth",
                "matmul_naive",
                "matmul_blocked",
                "stencil2d",
                "stencil3d",
                "lru_adversary",
            ]
        );
        assert_eq!(affine_kernels().len() + non_affine_kernels().len(), 18);
    }

    #[test]
    fn lookup_and_is_affine() {
        assert!(is_affine("stream_triad"));
        assert!(!is_affine("pointer_chase"));
        assert!(!is_affine("no_such_kernel"));
        assert!(lookup("zipf").is_some());
    }
}
