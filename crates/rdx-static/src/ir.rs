//! The affine loop-nest IR and its structural accounting.
//!
//! A kernel is modeled as a sequence of [`LoopNest`]s executed in order
//! and repeated forever (the registry truncates the infinite schedule at
//! `params.accesses`). Each nest is a rectangular iteration space; each
//! innermost iteration issues its [`ArrayRef`]s in order. A reference
//! addresses one element of a row-major array through per-dimension
//! affine [`Coord`]s: `value = offset + Σ coeff_j · loop_j`, optionally
//! wrapped modulo the dimension bound or clamped into it.
//!
//! Everything the estimator needs besides the reuse intervals themselves
//! is *exact* and computed here: accesses per period, store counts for an
//! arbitrary truncation point, and the per-array footprint (via the
//! covering-reference rule below). These are the quantities the
//! structural-consistency proptest pins against the generated streams.

use std::fmt;

/// How a coordinate value is folded into `[0, bound)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wrap {
    /// The affine value is used directly and must already be in range.
    None,
    /// The affine value is reduced modulo `bound`.
    Modulo,
    /// The affine value is clamped into `[0, bound)` (stencil borders).
    Clamp,
}

/// One dimension of an array reference: an affine function of the loop
/// indices, folded into `[0, bound)` according to `wrap`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coord {
    /// Row-major pitch: the flat-index multiplier of this dimension.
    pub pitch: u64,
    /// Dimension extent: values lie in `[0, bound)`.
    pub bound: u64,
    /// Per-loop coefficients, aligned with the nest's `extents`.
    pub coeffs: Vec<i64>,
    /// Constant term.
    pub offset: i64,
    /// Folding rule for out-of-range values.
    pub wrap: Wrap,
}

/// A single array reference issued once per innermost iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayRef {
    /// Array (address-region) identifier.
    pub array: u64,
    /// True for stores.
    pub store: bool,
    /// Outermost dimension first; flat index is `Σ value_d · pitch_d`.
    pub coords: Vec<Coord>,
}

/// A rectangular loop nest issuing `refs` once per innermost iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopNest {
    /// Loop trip counts, outermost first; the last loop varies fastest.
    pub extents: Vec<u64>,
    /// References in issue order; their index is the *lane*.
    pub refs: Vec<ArrayRef>,
}

/// A whole kernel: nests executed in order, repeated forever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelIr {
    /// Registry name of the kernel this IR models.
    pub name: &'static str,
    /// The nests of one period.
    pub nests: Vec<LoopNest>,
}

/// A structural defect in an IR (a model bug, not a user error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// An array has no reference whose image covers the full array box.
    NoCoveringRef {
        /// The array missing a covering reference.
        array: u64,
    },
    /// A reference's image escapes the array box it claims to address.
    RefOutOfBounds {
        /// The offending array.
        array: u64,
    },
    /// References to one array disagree on its dimensions or pitches.
    InconsistentArrayShape {
        /// The offending array.
        array: u64,
    },
    /// Coordinate pitches are not row-major consistent.
    NotRowMajor {
        /// The offending array.
        array: u64,
    },
    /// A nest has no loops, no refs, or a zero extent.
    EmptyNest,
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::NoCoveringRef { array } => {
                write!(f, "array {array} has no reference covering its full box")
            }
            IrError::RefOutOfBounds { array } => {
                write!(f, "a reference to array {array} escapes the array bounds")
            }
            IrError::InconsistentArrayShape { array } => {
                write!(f, "references to array {array} disagree on its shape")
            }
            IrError::NotRowMajor { array } => {
                write!(f, "array {array} coordinate pitches are not row-major")
            }
            IrError::EmptyNest => write!(f, "a loop nest has no loops, no refs, or a zero extent"),
        }
    }
}

impl std::error::Error for IrError {}

/// What a coordinate's value set looks like, for footprint reasoning.
struct CoordImage {
    /// The image is exactly `[0, bound)`.
    full: bool,
    /// The image is contained in `[0, bound)`.
    contained: bool,
}

/// Describes the image of one affine coordinate over its nest.
///
/// The unfolded image is `[lo, hi]` with `lo/hi` the extreme affine
/// values; it is an *interval* (dense) when the sorted nonzero
/// coefficient magnitudes satisfy the mixed-radix density condition
/// `|c_m| ≤ 1 + Σ_{l<m} |c_l|·(e_l − 1)`.
fn coord_image(c: &Coord, extents: &[u64]) -> CoordImage {
    let mut lo = c.offset;
    let mut hi = c.offset;
    let mut terms: Vec<(u64, u64)> = Vec::new(); // (|coeff|, extent)
    for (j, &coeff) in c.coeffs.iter().enumerate() {
        let e = extents.get(j).copied().unwrap_or(1);
        if coeff == 0 || e <= 1 {
            continue;
        }
        let swing = coeff.saturating_mul(e as i64 - 1);
        if swing > 0 {
            hi = hi.saturating_add(swing);
        } else {
            lo = lo.saturating_add(swing);
        }
        terms.push((coeff.unsigned_abs(), e));
    }
    terms.sort_unstable();
    let mut dense = true;
    let mut reach: u64 = 1; // size of the dense prefix interval
    for &(a, e) in &terms {
        if a > reach {
            dense = false;
            break;
        }
        reach = reach.saturating_add(a.saturating_mul(e - 1));
    }
    let span = hi.saturating_sub(lo).unsigned_abs().saturating_add(1);
    let bound = c.bound as i64;
    match c.wrap {
        Wrap::None => CoordImage {
            full: dense && lo == 0 && hi == bound - 1,
            contained: lo >= 0 && hi < bound,
        },
        Wrap::Modulo => CoordImage {
            full: dense && span >= c.bound,
            contained: true,
        },
        Wrap::Clamp => CoordImage {
            full: dense && lo <= 0 && hi >= bound - 1,
            contained: true,
        },
    }
}

impl LoopNest {
    /// Innermost iterations in one pass of the nest.
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.extents
            .iter()
            .fold(1u64, |acc, &e| acc.saturating_mul(e))
    }

    /// Accesses issued by one pass of the nest.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.iterations().saturating_mul(self.refs.len() as u64)
    }

    /// Store lanes per innermost iteration.
    #[must_use]
    pub fn stores_per_iter(&self) -> u64 {
        self.refs.iter().filter(|r| r.store).count() as u64
    }

    /// Iteration-index stride of loop `j`: how many innermost iterations
    /// pass between consecutive values of that loop variable.
    #[must_use]
    pub fn loop_stride(&self, j: usize) -> u64 {
        self.extents
            .iter()
            .skip(j + 1)
            .fold(1u64, |acc, &e| acc.saturating_mul(e))
    }
}

impl KernelIr {
    /// Accesses in one full period (all nests, once each).
    #[must_use]
    pub fn period_accesses(&self) -> u64 {
        self.nests.iter().map(LoopNest::accesses).sum()
    }

    /// Exact store count in the first `accesses` accesses of the
    /// truncated schedule — full periods, then full nests, then full
    /// iterations, then a lane prefix.
    #[must_use]
    pub fn stores(&self, accesses: u64) -> u64 {
        let period = self.period_accesses();
        if period == 0 {
            return 0;
        }
        let per_period: u64 = self
            .nests
            .iter()
            .map(|n| n.iterations().saturating_mul(n.stores_per_iter()))
            .sum();
        let mut stores = (accesses / period).saturating_mul(per_period);
        let mut rem = accesses % period;
        for nest in &self.nests {
            if rem == 0 {
                break;
            }
            let take = rem.min(nest.accesses());
            let lanes = nest.refs.len() as u64;
            if let Some(whole) = take.checked_div(lanes) {
                stores += whole.saturating_mul(nest.stores_per_iter());
                let partial = (take % lanes) as usize;
                stores += nest.refs[..partial].iter().filter(|r| r.store).count() as u64;
            }
            rem -= take;
        }
        stores
    }

    /// Distinct elements touched by one full period (and therefore by any
    /// truncation of at least one period), summed over arrays.
    ///
    /// Uses the covering-reference rule: every array must carry at least
    /// one reference whose per-dimension images are *exactly* `[0,
    /// bound)` (dense by the mixed-radix condition), and every other
    /// reference must stay inside the box. The footprint of the array is
    /// then the box volume, exactly.
    ///
    /// # Errors
    ///
    /// [`IrError`] when the IR violates the covering rule — a model bug.
    pub fn footprint(&self) -> Result<u64, IrError> {
        // (array id, shape fingerprint, covering seen) in first-touch order.
        type ArraySeen = (u64, Vec<(u64, u64)>, bool);
        let mut arrays: Vec<ArraySeen> = Vec::new();
        for nest in &self.nests {
            if nest.extents.is_empty() || nest.refs.is_empty() || nest.extents.contains(&0) {
                return Err(IrError::EmptyNest);
            }
            for r in &nest.refs {
                let shape: Vec<(u64, u64)> = r.coords.iter().map(|c| (c.pitch, c.bound)).collect();
                // Row-major pitch consistency.
                let mut expect = 1u64;
                for &(pitch, bound) in shape.iter().rev() {
                    if pitch != expect {
                        return Err(IrError::NotRowMajor { array: r.array });
                    }
                    expect = expect.saturating_mul(bound);
                }
                let mut covering = true;
                for c in &r.coords {
                    let img = coord_image(c, &nest.extents);
                    if !img.contained {
                        return Err(IrError::RefOutOfBounds { array: r.array });
                    }
                    covering &= img.full;
                }
                match arrays.iter_mut().find(|(id, _, _)| *id == r.array) {
                    Some((_, seen_shape, seen_cover)) => {
                        if *seen_shape != shape {
                            return Err(IrError::InconsistentArrayShape { array: r.array });
                        }
                        *seen_cover |= covering;
                    }
                    None => arrays.push((r.array, shape, covering)),
                }
            }
        }
        let mut total = 0u64;
        for (array, shape, covered) in arrays {
            if !covered {
                return Err(IrError::NoCoveringRef { array });
            }
            total += shape
                .iter()
                .fold(1u64, |acc, &(_, b)| acc.saturating_mul(b));
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cyc(n: u64) -> KernelIr {
        KernelIr {
            name: "cyc",
            nests: vec![LoopNest {
                extents: vec![n],
                refs: vec![ArrayRef {
                    array: 0,
                    store: false,
                    coords: vec![Coord {
                        pitch: 1,
                        bound: n,
                        coeffs: vec![1],
                        offset: 0,
                        wrap: Wrap::None,
                    }],
                }],
            }],
        }
    }

    #[test]
    fn cycle_accounting() {
        let ir = cyc(10);
        assert_eq!(ir.period_accesses(), 10);
        assert_eq!(ir.footprint().unwrap(), 10);
        assert_eq!(ir.stores(100), 0);
    }

    #[test]
    fn store_truncation_is_lane_exact() {
        // two refs per iteration, second is a store
        let mut ir = cyc(4);
        let mut st = ir.nests[0].refs[0].clone();
        st.store = true;
        ir.nests[0].refs.push(st);
        assert_eq!(ir.period_accesses(), 8);
        assert_eq!(ir.stores(0), 0);
        assert_eq!(ir.stores(1), 0); // load only
        assert_eq!(ir.stores(2), 1); // load + store
        assert_eq!(ir.stores(3), 1);
        assert_eq!(ir.stores(8), 4);
        assert_eq!(ir.stores(17), 8); // two periods + one load
        assert_eq!(ir.stores(18), 9);
    }

    #[test]
    fn descending_ref_covers() {
        // coeff −1 with offset n−1 walks n−1..0: still a full cover.
        let mut ir = cyc(6);
        ir.nests[0].refs[0].coords[0].coeffs = vec![-1];
        ir.nests[0].refs[0].coords[0].offset = 5;
        assert_eq!(ir.footprint().unwrap(), 6);
    }

    #[test]
    fn out_of_bounds_ref_rejected() {
        let mut ir = cyc(6);
        ir.nests[0].refs[0].coords[0].offset = 1; // image 1..=6, bound 6
        assert_eq!(ir.footprint(), Err(IrError::RefOutOfBounds { array: 0 }));
    }

    #[test]
    fn sparse_ref_alone_cannot_cover() {
        // stride-2 coefficient over half the extent touches evens only.
        let mut ir = cyc(6);
        ir.nests[0].extents = vec![3];
        ir.nests[0].refs[0].coords[0].coeffs = vec![2];
        assert_eq!(ir.footprint(), Err(IrError::NoCoveringRef { array: 0 }));
    }

    #[test]
    fn modulo_cover_requires_span() {
        let mut ir = cyc(8);
        ir.nests[0].refs[0].coords[0].wrap = Wrap::Modulo;
        ir.nests[0].refs[0].coords[0].bound = 5;
        // span 8 ≥ bound 5 → full cover of the 5-element array
        assert_eq!(ir.footprint().unwrap(), 5);
    }

    #[test]
    fn clamped_neighbor_is_contained() {
        let mut ir = cyc(6);
        let mut neighbor = ir.nests[0].refs[0].clone();
        neighbor.coords[0].offset = -1;
        neighbor.coords[0].wrap = Wrap::Clamp;
        ir.nests[0].refs.push(neighbor);
        assert_eq!(ir.footprint().unwrap(), 6);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut ir = cyc(6);
        let mut other = ir.nests[0].refs[0].clone();
        other.coords[0].bound = 5;
        other.coords[0].coeffs = vec![0];
        ir.nests[0].refs.push(other);
        assert_eq!(
            ir.footprint(),
            Err(IrError::InconsistentArrayShape { array: 0 })
        );
    }
}
