//! Random-variate samplers used by the irregular kernels.
//!
//! `rand` provides uniform sampling; the Zipf and Gaussian variates the
//! kernels need are implemented here (rather than pulling in `rand_distr`)
//! so the whole suite stays within the workspace's minimal dependency set.

use rand::rngs::SmallRng;
use rand::RngExt;

/// A bounded Zipf(θ) sampler over `{0, 1, …, n−1}` (rank 0 is hottest),
/// using Gray et al.'s constant-time rejection-free approximation as used
/// by YCSB and TPC benchmark generators.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// Creates a sampler over `n` items with skew `theta` (0 < θ < 1;
    /// YCSB's default 0.99 approximates classic Zipf's law).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is outside `(0, 1)`.
    #[must_use]
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf domain must be non-empty");
        assert!(
            theta > 0.0 && theta < 1.0,
            "zipf skew must lie in (0, 1), got {theta}"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum for small n; integral approximation for large n keeps
        // construction O(1)-ish without visible accuracy loss for sampling.
        if n <= 10_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=10_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            // ∫_{10000}^{n} x^-θ dx
            let a = 10_000f64;
            let b = n as f64;
            head + (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta)
        }
    }

    /// Draws one rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.random();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// The domain size.
    #[must_use]
    pub fn domain(&self) -> u64 {
        self.n
    }
}

/// Draws a standard-normal variate via the Box–Muller transform.
pub fn standard_normal(rng: &mut SmallRng) -> f64 {
    // Avoid ln(0) by keeping u1 in (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Generates a uniformly random cyclic permutation of `0..n` (Sattolo's
/// algorithm), used to build single-cycle pointer-chase rings.
#[must_use]
pub fn sattolo_cycle(n: usize, rng: &mut SmallRng) -> Vec<u32> {
    assert!(n <= u32::MAX as usize, "cycle too large for u32 indices");
    let mut items: Vec<u32> = (0..n as u32).collect();
    let mut i = n;
    while i > 1 {
        i -= 1;
        let j = rng.random_range(0..i);
        items.swap(i, j);
    }
    // `items` is now a random cyclic order; build successor pointers.
    let mut next = vec![0u32; n];
    for k in 0..n {
        next[items[k] as usize] = items[(k + 1) % n];
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn zipf_in_range_and_skewed() {
        let z = Zipf::new(1000, 0.99);
        let mut r = rng();
        let mut counts = vec![0u64; 1000];
        for _ in 0..100_000 {
            let s = z.sample(&mut r);
            assert!(s < 1000);
            counts[s as usize] += 1;
        }
        // rank 0 must be much hotter than mid ranks
        assert!(
            counts[0] > 20 * counts[500].max(1),
            "{} vs {}",
            counts[0],
            counts[500]
        );
        // the tail is still reachable
        assert!(counts[500..].iter().sum::<u64>() > 0);
    }

    #[test]
    fn zipf_low_skew_more_uniform() {
        let hot = Zipf::new(100, 0.99);
        let mild = Zipf::new(100, 0.2);
        let mut r1 = rng();
        let mut r2 = rng();
        let mut hot0 = 0;
        let mut mild0 = 0;
        for _ in 0..50_000 {
            if hot.sample(&mut r1) == 0 {
                hot0 += 1;
            }
            if mild.sample(&mut r2) == 0 {
                mild0 += 1;
            }
        }
        assert!(hot0 > 3 * mild0);
    }

    #[test]
    fn zipf_single_item() {
        let z = Zipf::new(1, 0.5);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(z.sample(&mut r), 0);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zipf_empty_domain() {
        let _ = Zipf::new(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "(0, 1)")]
    fn zipf_bad_theta() {
        let _ = Zipf::new(10, 1.5);
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 200_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = standard_normal(&mut r);
            assert!(x.is_finite());
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn sattolo_is_single_cycle() {
        let mut r = rng();
        for n in [1usize, 2, 3, 17, 1000] {
            let next = sattolo_cycle(n, &mut r);
            let mut seen = vec![false; n];
            let mut cur = 0u32;
            for _ in 0..n {
                assert!(
                    !seen[cur as usize],
                    "revisited {cur} before full cycle (n={n})"
                );
                seen[cur as usize] = true;
                cur = next[cur as usize];
            }
            assert_eq!(cur, 0, "must return to start after n steps");
            assert!(seen.iter().all(|&s| s));
        }
    }
}
