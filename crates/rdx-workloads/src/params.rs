//! Workload sizing parameters.

/// Sizing parameters shared by every kernel.
///
/// `elements` is the nominal data footprint in 8-byte elements; each kernel
/// partitions it among its arrays (a kernel never touches more than
/// `elements` distinct elements). `accesses` is exact: every stream yields
/// precisely that many accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Params {
    /// Exact number of accesses the stream will produce.
    pub accesses: u64,
    /// Nominal footprint in 8-byte elements.
    pub elements: u64,
    /// RNG seed; all randomness in a kernel derives from it.
    pub seed: u64,
}

impl Default for Params {
    /// One million accesses over 60 000 elements (≈469 KiB), seed 42 —
    /// small enough for tests, large enough to exercise multi-level reuse.
    /// The element count is deliberately *not* a power of two: pure-cycle
    /// kernels would otherwise place every reuse distance exactly on a
    /// power-of-two histogram bucket edge, where a fraction-of-a-percent
    /// estimation bias flips the bucket and histogram-intersection metrics
    /// collapse despite a near-perfect estimate.
    fn default() -> Self {
        Params {
            accesses: 1_000_000,
            elements: 60_000,
            seed: 42,
        }
    }
}

impl Params {
    /// Sets the access count.
    ///
    /// # Panics
    ///
    /// Panics if `accesses` is zero.
    #[must_use]
    pub fn with_accesses(mut self, accesses: u64) -> Self {
        assert!(accesses > 0, "access count must be non-zero");
        self.accesses = accesses;
        self
    }

    /// Sets the nominal element footprint.
    ///
    /// # Panics
    ///
    /// Panics if `elements` is zero.
    #[must_use]
    pub fn with_elements(mut self, elements: u64) -> Self {
        assert!(elements > 0, "element count must be non-zero");
        self.elements = elements;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Nominal footprint in bytes (8 bytes per element).
    #[must_use]
    pub fn footprint_bytes(&self) -> u64 {
        self.elements * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let p = Params::default()
            .with_accesses(5)
            .with_elements(7)
            .with_seed(9);
        assert_eq!(p.accesses, 5);
        assert_eq!(p.elements, 7);
        assert_eq!(p.seed, 9);
        assert_eq!(p.footprint_bytes(), 56);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_accesses_rejected() {
        let _ = Params::default().with_accesses(0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_elements_rejected() {
        let _ = Params::default().with_elements(0);
    }
}
