//! The workload registry: names, SPEC analogs, and stream construction.

use crate::kernels;
use crate::params::Params;
use rdx_trace::AccessStream;
use std::fmt;

/// A boxed, sendable access stream — what every kernel produces.
pub type DynStream = Box<dyn AccessStream + Send>;

/// A workload in the suite: identity, provenance, and a stream factory.
#[derive(Clone, Copy)]
pub struct WorkloadSpec {
    /// Short unique name (`stream_triad`, `pointer_chase`, …).
    pub name: &'static str,
    /// The SPEC CPU2017 benchmark whose locality this kernel mimics, or a
    /// note when the kernel is a synthetic stressor. Documented substitution
    /// for the paper's (non-redistributable) evaluation suite.
    pub spec_analog: &'static str,
    /// One-line description of the access pattern.
    pub description: &'static str,
    build: fn(&Params) -> DynStream,
}

impl WorkloadSpec {
    /// Instantiates the workload's access stream for the given parameters.
    ///
    /// The stream yields exactly `params.accesses` accesses and is a
    /// deterministic function of `params`.
    #[must_use]
    pub fn stream(&self, params: &Params) -> DynStream {
        (self.build)(params)
    }
}

impl fmt::Debug for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkloadSpec")
            .field("name", &self.name)
            .field("spec_analog", &self.spec_analog)
            .finish_non_exhaustive()
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

macro_rules! spec {
    ($name:ident, $analog:literal, $desc:literal) => {
        WorkloadSpec {
            name: stringify!($name),
            spec_analog: $analog,
            description: $desc,
            build: kernels::$name,
        }
    };
}

const SUITE: &[WorkloadSpec] = &[
    spec!(
        stream_triad,
        "603.bwaves_s / STREAM",
        "sequential triad over three arrays; pure streaming"
    ),
    spec!(
        strided,
        "649.fotonik3d_s",
        "stride-8 sweeps with rotating offset; vector-like strides"
    ),
    spec!(
        sawtooth,
        "644.nab_s",
        "triangular forward/backward sweeps; broad distance spectrum"
    ),
    spec!(
        fifo_queue,
        "648.exchange2_s",
        "small ring buffer; cache-resident producer/consumer"
    ),
    spec!(
        random_uniform,
        "505.mcf_r (global phase)",
        "uniform random over the footprint, 10% stores"
    ),
    spec!(
        zipf,
        "523.xalancbmk_s",
        "Zipf(0.99) popularity; compact hot set, long tail"
    ),
    spec!(
        gauss_hotset,
        "500.perlbench_r",
        "gaussian working set with slowly drifting center"
    ),
    spec!(
        hash_probe,
        "531.deepsjeng_s (TT probes)",
        "open-addressing hash probes, geometric probe length"
    ),
    spec!(
        pointer_chase,
        "505.mcf_s",
        "single-cycle random pointer chase; LLC-defeating"
    ),
    spec!(
        bst_search,
        "541.leela_s",
        "root-to-leaf walks of an implicit binary tree"
    ),
    spec!(
        spmv,
        "510.parest_r",
        "CSR SpMV: sequential index/value streams + random gathers"
    ),
    spec!(
        matmul_naive,
        "508.namd_r (unblocked kernels)",
        "triple-loop matmul; column strides defeat caches"
    ),
    spec!(
        matmul_blocked,
        "538.imagick_r (tiled ops)",
        "8x8-tiled matmul; the locality-optimized twin"
    ),
    spec!(
        stencil2d,
        "507.cactuBSSN_r",
        "5-point 2-D stencil sweeps over in/out grids"
    ),
    spec!(
        stencil3d,
        "519.lbm_r",
        "7-point 3-D stencil sweeps; lattice-Boltzmann shape"
    ),
    spec!(
        sort_merge,
        "557.xz_r",
        "bottom-up merge passes; run length doubles per pass"
    ),
    spec!(
        phased,
        "602.gcc_s",
        "hot set expands/contracts between compiler-like phases"
    ),
    spec!(
        lru_adversary,
        "(synthetic stressor)",
        "cyclic scan of the whole footprint; LRU worst case"
    ),
];

/// Returns the full workload suite in canonical order.
#[must_use]
pub fn suite() -> &'static [WorkloadSpec] {
    SUITE
}

/// Looks up a workload by name.
#[must_use]
pub fn by_name(name: &str) -> Option<&'static WorkloadSpec> {
    SUITE.iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eighteen_unique_names() {
        assert_eq!(suite().len(), 18);
        let mut names: Vec<_> = suite().iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 18);
    }

    #[test]
    fn by_name_roundtrip() {
        for w in suite() {
            let found = by_name(w.name).expect("every suite member resolvable");
            assert_eq!(found.name, w.name);
        }
        assert!(by_name("not_a_workload").is_none());
    }

    #[test]
    fn every_workload_streams_exact_count() {
        let p = Params::default().with_accesses(5000).with_elements(512);
        for w in suite() {
            let mut s = w.stream(&p);
            assert_eq!(s.count_remaining(), 5000, "{}", w.name);
        }
    }

    #[test]
    fn debug_and_display_are_informative() {
        let w = by_name("zipf").unwrap();
        assert_eq!(w.to_string(), "zipf");
        assert!(format!("{w:?}").contains("zipf"));
        assert!(!w.description.is_empty());
        assert!(!w.spec_analog.is_empty());
    }

    #[test]
    fn streams_are_send() {
        fn assert_send<T: Send>(_: &T) {}
        let p = Params::default().with_accesses(10);
        for w in suite() {
            let s = w.stream(&p);
            assert_send(&s);
        }
    }
}
