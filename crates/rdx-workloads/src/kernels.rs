//! The kernel implementations.
//!
//! Every kernel is an infinite, deterministic access generator capped at
//! `params.accesses` by the registry. Addresses are 8-byte elements laid
//! out in per-array regions 4 GiB apart so arrays never alias.

use crate::dist::{sattolo_cycle, standard_normal, Zipf};
use crate::params::Params;
use crate::registry::DynStream;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use rdx_trace::{Access, AccessStream, FnStream};

/// Base byte address of array region `r`.
fn region(r: u64) -> u64 {
    r << 32
}

/// Byte address of element `idx` in region `r`.
fn elem(r: u64, idx: u64) -> u64 {
    region(r) + idx * 8
}

fn rng_for(p: &Params, salt: u64) -> SmallRng {
    SmallRng::seed_from_u64(p.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn boxed(p: &Params, f: impl FnMut() -> Option<Access> + Send + 'static) -> DynStream {
    Box::new(FnStream::new(f).take(p.accesses))
}

/// STREAM-triad style: `a[i] = b[i] + s·c[i]` over three arrays.
pub(crate) fn stream_triad(p: &Params) -> DynStream {
    let n = (p.elements / 3).max(1);
    let mut i = 0u64;
    let mut lane = 0u8;
    boxed(p, move || {
        let a = match lane {
            0 => Access::load(elem(1, i)),  // b[i]
            1 => Access::load(elem(2, i)),  // c[i]
            _ => Access::store(elem(0, i)), // a[i]
        };
        lane += 1;
        if lane == 3 {
            lane = 0;
            i = (i + 1) % n;
        }
        Some(a)
    })
}

/// Stride-8 sweeps: each pass visits every 8th element, with the pass
/// offset rotating so all elements are touched across 8 passes.
pub(crate) fn strided(p: &Params) -> DynStream {
    let n = p.elements.max(8);
    let mut off = 0u64;
    let mut i = 0u64;
    boxed(p, move || {
        let idx = off + i * 8;
        let a = Access::load(elem(0, idx % n));
        i += 1;
        if off + i * 8 >= n {
            i = 0;
            off = (off + 1) % 8;
        }
        Some(a)
    })
}

/// Triangular sweep 0→n−1→0…: produces a broad spread of reuse distances.
pub(crate) fn sawtooth(p: &Params) -> DynStream {
    let n = p.elements.max(2);
    let mut i = 0u64;
    let mut up = true;
    boxed(p, move || {
        let a = Access::load(elem(0, i));
        if up {
            if i + 1 == n {
                up = false;
            } else {
                i += 1;
            }
        } else if i == 0 {
            up = true;
        } else {
            i -= 1;
        }
        Some(a)
    })
}

/// Producer/consumer ring buffer: tiny, cache-resident footprint.
pub(crate) fn fifo_queue(p: &Params) -> DynStream {
    let n = p.elements.clamp(2, 3000); // queues are small by nature
    let mut head = 0u64;
    let mut producing = true;
    boxed(p, move || {
        let a = if producing {
            Access::store(elem(0, head))
        } else {
            let tail = (head + n / 2) % n;
            let a = Access::load(elem(0, tail));
            head = (head + 1) % n;
            a
        };
        producing = !producing;
        Some(a)
    })
}

/// Uniform random accesses over the whole footprint (10 % stores).
pub(crate) fn random_uniform(p: &Params) -> DynStream {
    let n = p.elements;
    let mut rng = rng_for(p, 1);
    boxed(p, move || {
        let idx = rng.random_range(0..n);
        Some(if rng.random_range(0..10u32) == 0 {
            Access::store(elem(0, idx))
        } else {
            Access::load(elem(0, idx))
        })
    })
}

/// Zipf(0.99)-popular accesses: a compact hot set with a long cold tail.
pub(crate) fn zipf(p: &Params) -> DynStream {
    let z = Zipf::new(p.elements, 0.99);
    let mut rng = rng_for(p, 2);
    boxed(p, move || {
        let rank = z.sample(&mut rng);
        Some(Access::load(elem(0, rank)))
    })
}

/// A Gaussian hot set whose center drifts slowly across the footprint.
pub(crate) fn gauss_hotset(p: &Params) -> DynStream {
    let n = p.elements.max(2);
    let sigma = (n / 64).max(1) as f64;
    let drift_every = (n / 16).max(1);
    let mut rng = rng_for(p, 3);
    let mut t = 0u64;
    boxed(p, move || {
        let center = (t / drift_every) % n;
        let jump = standard_normal(&mut rng) * sigma;
        let idx = (center as i64 + jump as i64).rem_euclid(n as i64) as u64;
        t += 1;
        Some(Access::load(elem(0, idx)))
    })
}

/// Open-addressing hash-table probes with geometric probe lengths.
pub(crate) fn hash_probe(p: &Params) -> DynStream {
    let m = p.elements.next_power_of_two();
    let mut rng = rng_for(p, 4);
    let mut probe_left = 0u64;
    let mut slot = 0u64;
    boxed(p, move || {
        if probe_left == 0 {
            // new lookup: hash a fresh key, draw a probe length
            slot = rng.random_range(0..m);
            probe_left = 1;
            while probe_left < 8 && rng.random_range(0..2u32) == 0 {
                probe_left += 1;
            }
        }
        let a = if probe_left == 1 && rng.random_range(0..4u32) == 0 {
            Access::store(elem(0, slot)) // insert on final probe
        } else {
            Access::load(elem(0, slot))
        };
        slot = (slot + 1) & (m - 1);
        probe_left -= 1;
        Some(a)
    })
}

/// Pointer chasing around a random single-cycle permutation: the classic
/// LLC-defeating pattern (505.mcf's core loop).
pub(crate) fn pointer_chase(p: &Params) -> DynStream {
    let n = usize::try_from(p.elements.min(1 << 22)).expect("footprint fits usize");
    let mut rng = rng_for(p, 5);
    let next = sattolo_cycle(n.max(1), &mut rng);
    let mut cur = 0u32;
    boxed(p, move || {
        let a = Access::load(elem(0, u64::from(cur)));
        cur = next[cur as usize];
        Some(a)
    })
}

/// Random searches down an implicit (array-embedded) binary search tree.
pub(crate) fn bst_search(p: &Params) -> DynStream {
    let n = p.elements.max(1);
    let mut rng = rng_for(p, 6);
    let mut node = 1u64; // 1-based heap indexing
    boxed(p, move || {
        let a = Access::load(elem(0, node - 1));
        node = 2 * node + u64::from(rng.random_range(0..2u32));
        if node > n {
            node = 1; // next search
        }
        Some(a)
    })
}

/// CSR sparse matrix–vector product: sequential index/value streams plus
/// random gathers from the dense vector.
pub(crate) fn spmv(p: &Params) -> DynStream {
    let x_len = (p.elements / 2).max(1); // dense vector
    let nnz_stream = (p.elements / 4).max(1); // col + val arrays (cycled)
    let rows = (x_len / 8).max(1);
    let mut rng = rng_for(p, 7);
    let mut k = 0u64;
    let mut lane = 0u8;
    let mut row = 0u64;
    let mut pending_store: Option<u64> = None;
    boxed(p, move || {
        if let Some(r) = pending_store.take() {
            return Some(Access::store(elem(3, r))); // y[row]
        }
        let a = match lane {
            0 => Access::load(elem(1, k % nnz_stream)), // col[k]
            1 => Access::load(elem(2, k % nnz_stream)), // val[k]
            _ => Access::load(elem(0, rng.random_range(0..x_len))), // x[col]
        };
        lane += 1;
        if lane == 3 {
            lane = 0;
            k += 1;
            if k.is_multiple_of(8) {
                row = (row + 1) % rows;
                pending_store = Some(row);
            }
        }
        Some(a)
    })
}

/// Naive triple-loop matrix multiply: A row-streams, B column-strides, C
/// accumulates — the canonical capacity-miss generator.
pub(crate) fn matmul_naive(p: &Params) -> DynStream {
    let n = (((p.elements / 3) as f64).sqrt() as u64).max(2);
    let mut i = 0u64;
    let mut j = 0u64;
    let mut k = 0u64;
    let mut lane = 0u8;
    boxed(p, move || {
        let a = match lane {
            0 => Access::load(elem(0, i * n + k)), // A[i][k]
            1 => Access::load(elem(1, k * n + j)), // B[k][j]
            2 => Access::load(elem(2, i * n + j)), // C[i][j]
            _ => Access::store(elem(2, i * n + j)),
        };
        lane += 1;
        if lane == 4 {
            lane = 0;
            k += 1;
            if k == n {
                k = 0;
                j += 1;
                if j == n {
                    j = 0;
                    i = (i + 1) % n;
                }
            }
        }
        Some(a)
    })
}

/// Tiled matrix multiply (8×8 tiles): the locality-optimized variant of
/// [`matmul_naive`], included so the suite contains both sides of the
/// classic optimization the paper's tooling is meant to guide.
pub(crate) fn matmul_blocked(p: &Params) -> DynStream {
    let n = (((p.elements / 3) as f64).sqrt() as u64).max(2);
    let t = 8u64.min(n);
    let tiles = n.div_ceil(t);
    // loop state: tile coords (ti, tj, tk), intra coords (i, j, k), lane
    let mut s = [0u64; 6];
    let mut lane = 0u8;
    boxed(p, move || {
        let [ti, tj, tk, i, j, k] = s;
        let (gi, gj, gk) = ((ti * t + i) % n, (tj * t + j) % n, (tk * t + k) % n);
        let a = match lane {
            0 => Access::load(elem(0, gi * n + gk)),
            1 => Access::load(elem(1, gk * n + gj)),
            2 => Access::load(elem(2, gi * n + gj)),
            _ => Access::store(elem(2, gi * n + gj)),
        };
        lane += 1;
        if lane == 4 {
            lane = 0;
            // advance k, j, i within tile, then tk, tj, ti
            s[5] += 1;
            if s[5] == t {
                s[5] = 0;
                s[4] += 1;
                if s[4] == t {
                    s[4] = 0;
                    s[3] += 1;
                    if s[3] == t {
                        s[3] = 0;
                        s[2] += 1;
                        if s[2] == tiles {
                            s[2] = 0;
                            s[1] += 1;
                            if s[1] == tiles {
                                s[1] = 0;
                                s[0] = (s[0] + 1) % tiles;
                            }
                        }
                    }
                }
            }
        }
        Some(a)
    })
}

/// 5-point 2-D stencil sweeps over an in/out grid pair.
pub(crate) fn stencil2d(p: &Params) -> DynStream {
    let g = (((p.elements / 2) as f64).sqrt() as u64).max(2);
    let mut i = 0u64;
    let mut j = 0u64;
    let mut lane = 0u8;
    boxed(p, move || {
        let clamp = |v: i64| v.clamp(0, g as i64 - 1) as u64;
        let (ii, jj) = (i as i64, j as i64);
        let a = match lane {
            0 => Access::load(elem(0, i * g + j)),
            1 => Access::load(elem(0, clamp(ii - 1) * g + j)),
            2 => Access::load(elem(0, clamp(ii + 1) * g + j)),
            3 => Access::load(elem(0, i * g + clamp(jj - 1))),
            4 => Access::load(elem(0, i * g + clamp(jj + 1))),
            _ => Access::store(elem(1, i * g + j)),
        };
        lane += 1;
        if lane == 6 {
            lane = 0;
            j += 1;
            if j == g {
                j = 0;
                i = (i + 1) % g;
            }
        }
        Some(a)
    })
}

/// 7-point 3-D stencil sweeps (the lattice-Boltzmann access shape).
pub(crate) fn stencil3d(p: &Params) -> DynStream {
    let g = (((p.elements / 2) as f64).cbrt() as u64).max(2);
    let mut c = [0u64; 3];
    let mut lane = 0u8;
    boxed(p, move || {
        let clamp = |v: i64| v.clamp(0, g as i64 - 1) as u64;
        let [x, y, z] = c;
        let at = |x: u64, y: u64, z: u64| (x * g + y) * g + z;
        let (xi, yi, zi) = (x as i64, y as i64, z as i64);
        let a = match lane {
            0 => Access::load(elem(0, at(x, y, z))),
            1 => Access::load(elem(0, at(clamp(xi - 1), y, z))),
            2 => Access::load(elem(0, at(clamp(xi + 1), y, z))),
            3 => Access::load(elem(0, at(x, clamp(yi - 1), z))),
            4 => Access::load(elem(0, at(x, clamp(yi + 1), z))),
            5 => Access::load(elem(0, at(x, y, clamp(zi - 1)))),
            6 => Access::load(elem(0, at(x, y, clamp(zi + 1)))),
            _ => Access::store(elem(1, at(x, y, z))),
        };
        lane += 1;
        if lane == 8 {
            lane = 0;
            c[2] += 1;
            if c[2] == g {
                c[2] = 0;
                c[1] += 1;
                if c[1] == g {
                    c[1] = 0;
                    c[0] = (c[0] + 1) % g;
                }
            }
        }
        Some(a)
    })
}

/// Bottom-up merge-sort passes: two sequential read cursors racing into a
/// sequential writer, run length doubling each pass.
pub(crate) fn sort_merge(p: &Params) -> DynStream {
    let n = (p.elements / 2).max(4);
    let mut run = 1u64;
    let mut out = 0u64;
    let mut lane = 0u8;
    boxed(p, move || {
        let pair = out / (2 * run);
        let within = out % (2 * run);
        let left = pair * 2 * run + within / 2;
        let right = (pair * 2 * run + run + within / 2).min(n - 1);
        let a = match lane {
            0 => Access::load(elem(0, left)),
            1 => Access::load(elem(0, right)),
            _ => Access::store(elem(1, out)),
        };
        lane += 1;
        if lane == 3 {
            lane = 0;
            out += 1;
            if out == n {
                out = 0;
                run *= 2;
                if run >= n {
                    run = 1;
                }
            }
        }
        Some(a)
    })
}

/// Phase-changing hot sets: the working set expands and contracts every
/// eighth of the run, as compiler-like workloads do between passes.
pub(crate) fn phased(p: &Params) -> DynStream {
    let n = p.elements.max(64);
    let phase_len = (p.accesses / 8).max(1000);
    let sizes = [n, n / 16, n / 2, n / 64];
    let mut rng = rng_for(p, 8);
    let mut t = 0u64;
    boxed(p, move || {
        let hot = sizes[((t / phase_len) % sizes.len() as u64) as usize].max(1);
        let idx = rng.random_range(0..hot);
        t += 1;
        Some(Access::load(elem(0, idx)))
    })
}

/// Cyclic scan over the full footprint: every reuse has distance
/// `elements − 1`, the adversarial worst case for LRU caches.
pub(crate) fn lru_adversary(p: &Params) -> DynStream {
    let n = p.elements.max(2);
    let mut i = 0u64;
    boxed(p, move || {
        let a = Access::load(elem(0, i));
        i = (i + 1) % n;
        Some(a)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_trace::{Granularity, TraceStats};

    fn stats(f: fn(&Params) -> DynStream, p: &Params) -> TraceStats {
        TraceStats::measure(f(p), Granularity::WORD)
    }

    fn small() -> Params {
        Params::default()
            .with_accesses(30_000)
            .with_elements(1024)
            .with_seed(7)
    }

    #[test]
    fn exact_access_counts() {
        let p = small();
        for f in [
            stream_triad,
            strided,
            sawtooth,
            fifo_queue,
            random_uniform,
            zipf,
            gauss_hotset,
            hash_probe,
            pointer_chase,
            bst_search,
            spmv,
            matmul_naive,
            matmul_blocked,
            stencil2d,
            stencil3d,
            sort_merge,
            phased,
            lru_adversary,
        ] {
            assert_eq!(stats(f, &p).accesses, p.accesses);
        }
    }

    #[test]
    fn footprints_bounded_by_params() {
        let p = small();
        for (name, f) in [
            ("stream_triad", stream_triad as fn(&Params) -> DynStream),
            ("strided", strided),
            ("sawtooth", sawtooth),
            ("random_uniform", random_uniform),
            ("zipf", zipf),
            ("gauss_hotset", gauss_hotset),
            ("pointer_chase", pointer_chase),
            ("bst_search", bst_search),
            ("lru_adversary", lru_adversary),
            ("phased", phased),
        ] {
            let s = stats(f, &p);
            assert!(
                s.distinct_blocks <= p.elements,
                "{name}: {} distinct > {} elements",
                s.distinct_blocks,
                p.elements
            );
            assert!(s.distinct_blocks > 0, "{name}");
        }
        // hash_probe rounds the table up to a power of two
        assert!(stats(hash_probe, &p).distinct_blocks <= p.elements.next_power_of_two());
    }

    #[test]
    fn deterministic_given_seed() {
        let p = small();
        for f in [random_uniform, zipf, hash_probe, pointer_chase, phased] {
            let a: Vec<_> = {
                let mut s = f(&p);
                s.iter().collect()
            };
            let b: Vec<_> = {
                let mut s = f(&p);
                s.iter().collect()
            };
            assert_eq!(a, b);
        }
    }

    #[test]
    fn seed_changes_random_kernels() {
        let p = small();
        let q = small().with_seed(8);
        let mut a = random_uniform(&p);
        let mut b = random_uniform(&q);
        let va: Vec<_> = a.iter().take(100).collect();
        let vb: Vec<_> = b.iter().take(100).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn pointer_chase_visits_whole_cycle() {
        let p = Params::default()
            .with_accesses(2048)
            .with_elements(2048)
            .with_seed(3);
        let s = stats(pointer_chase, &p);
        // a single cycle of length 2048 visited 2048 times touches all
        assert_eq!(s.distinct_blocks, 2048);
    }

    #[test]
    fn lru_adversary_is_pure_cycle() {
        let p = small();
        let s = stats(lru_adversary, &p);
        assert_eq!(s.distinct_blocks, p.elements);
        assert_eq!(s.stores, 0);
    }

    #[test]
    fn stream_triad_mixes_loads_and_stores() {
        let p = small();
        let s = stats(stream_triad, &p);
        assert!(
            (s.store_ratio() - 1.0 / 3.0).abs() < 0.01,
            "{}",
            s.store_ratio()
        );
    }

    #[test]
    fn zipf_concentrates_accesses() {
        let p = small();
        let mut s = zipf(&p);
        let mut hot = 0u64;
        let mut total = 0u64;
        while let Some(a) = s.next_access() {
            total += 1;
            if a.addr.raw() < region(0) + 64 * 8 {
                hot += 1;
            }
        }
        // the top 64 of 1024 elements should absorb well over half
        assert!(hot * 2 > total, "{hot}/{total}");
    }

    #[test]
    fn stencil_touches_two_regions() {
        let p = small();
        let mut s = stencil2d(&p);
        let mut regions = std::collections::HashSet::new();
        while let Some(a) = s.next_access() {
            regions.insert(a.addr.raw() >> 32);
        }
        assert_eq!(regions.len(), 2, "in + out grids");
    }

    #[test]
    fn matmul_blocked_smaller_working_window() {
        // The blocked variant should reuse data sooner: compare mean reuse
        // distance proxies via distinct blocks in a fixed window.
        let p = Params::default()
            .with_accesses(40_000)
            .with_elements(3 * 64 * 64)
            .with_seed(1);
        let naive: Vec<u64> = {
            let mut s = matmul_naive(&p);
            s.iter().map(|a| a.addr.raw() >> 3).collect()
        };
        let blocked: Vec<u64> = {
            let mut s = matmul_blocked(&p);
            s.iter().map(|a| a.addr.raw() >> 3).collect()
        };
        let window_distinct = |v: &[u64]| {
            v.chunks(4096)
                .map(|c| {
                    let mut set: Vec<u64> = c.to_vec();
                    set.sort_unstable();
                    set.dedup();
                    set.len()
                })
                .sum::<usize>()
        };
        assert!(
            window_distinct(&blocked) < window_distinct(&naive),
            "blocked should touch fewer distinct blocks per window"
        );
    }

    #[test]
    fn tiny_element_counts_do_not_panic() {
        let p = Params::default().with_accesses(1000).with_elements(1);
        for f in [
            stream_triad,
            strided,
            sawtooth,
            fifo_queue,
            random_uniform,
            zipf,
            gauss_hotset,
            hash_probe,
            pointer_chase,
            bst_search,
            spmv,
            matmul_naive,
            matmul_blocked,
            stencil2d,
            stencil3d,
            sort_merge,
            phased,
            lru_adversary,
        ] {
            assert_eq!(stats(f, &p).accesses, 1000);
        }
    }
}
