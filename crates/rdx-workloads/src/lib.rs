//! A deterministic synthetic workload suite spanning the locality spectrum.
//!
//! The RDX paper evaluates on SPEC CPU2017, which cannot be redistributed;
//! this crate substitutes a suite of 18 access-pattern kernels chosen so
//! that every locality regime SPEC exercises is represented — dense
//! streaming, strided sweeps, stencils, blocked and naive linear algebra,
//! pointer chasing, hash probing, Zipf- and Gaussian-skewed hot sets,
//! phase-changing mixes, and adversarial scans. The mapping from each
//! kernel to the SPEC benchmark whose memory behaviour it mimics is part of
//! each [`WorkloadSpec`] (`spec_analog`) and is tabulated by experiment T1.
//!
//! All kernels are deterministic functions of [`Params`] (access count,
//! element count, seed): every experiment in the workspace is exactly
//! reproducible.
//!
//! Addresses are generated at 8-byte element granularity (`addr = base +
//! index * 8`), matching how scalar code touches doubles/pointers; reuse
//! distance is then measured at the caller's chosen [`Granularity`].
//!
//! # Example
//!
//! ```
//! use rdx_workloads::{suite, Params};
//! use rdx_trace::AccessStream;
//!
//! let params = Params::default().with_accesses(10_000);
//! for spec in suite() {
//!     let mut stream = spec.stream(&params);
//!     assert_eq!(stream.count_remaining(), 10_000, "{}", spec.name);
//! }
//! ```
//!
//! [`Granularity`]: rdx_trace::Granularity

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
mod kernels;
mod params;
mod registry;

pub use params::Params;
pub use registry::{by_name, suite, DynStream, WorkloadSpec};
