//! Baseline profiles are pinned to a golden digest, exactly like the
//! RDX registry digest in `rdx-core`.
//!
//! The baselines' hot maps (e.g. `CounterOnly`'s `last_sample`) use the
//! vendored deterministic Fx hasher, and their outputs must not depend
//! on map iteration order or hasher choice at all: this test digests
//! the exact f64 bit patterns of every suite workload's histogram under
//! both sampling baselines and compares against one recorded constant.
//! Any hasher or map-migration change that perturbs results — rather
//! than just their internal layout — fails here.

use rdx_baselines::{BaselineProfile, CounterOnly, Shards};
use rdx_histogram::Histogram;
use rdx_workloads::{suite, Params};

/// FNV-1a over u64 words (histogram bounds + weight bit patterns).
struct Digest(u64);

impl Digest {
    fn new() -> Digest {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn push(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn push_histogram(&mut self, h: &Histogram) {
        for b in h.buckets() {
            self.push(b.range.lo);
            self.push(b.range.hi);
            self.push(b.weight.to_bits());
        }
        self.push(h.infinite_weight().to_bits());
    }

    fn push_profile(&mut self, p: &BaselineProfile) {
        self.push_histogram(p.rd.as_histogram());
        self.push(p.accesses);
        self.push(p.observed_accesses);
    }
}

/// Recorded from a run at the pinned operating point below. The digest
/// deliberately excludes `tool_bytes` (capacity-derived, an accounting
/// detail) so it pins *measurement* results only.
const GOLDEN: u64 = 0xd2cf_eb89_c183_6951;

#[test]
fn baseline_suite_digest_is_pinned() {
    let params = Params::default().with_accesses(60_000).with_elements(800);
    let mut digest = Digest::new();
    for w in suite() {
        digest.push_profile(&CounterOnly::new(512).profile(w.stream(&params)));
        digest.push_profile(&Shards::new(0.01).profile(w.stream(&params)));
    }
    assert_eq!(
        digest.0, GOLDEN,
        "baseline suite digest {:#018x} deviates from the recorded \
         baseline — sampling results must be bit-stable across runs and \
         hasher-internals changes",
        digest.0,
    );
}
