//! The exhaustive-instrumentation baseline.

use crate::BaselineProfile;
use rdx_groundtruth::ExactProfile;
use rdx_histogram::Binning;
use rdx_trace::{AccessStream, Granularity};

/// Exhaustive instrumentation: exact histograms at exhaustive cost.
///
/// Wraps [`ExactProfile`] measurement and exposes it through the common
/// [`BaselineProfile`] shape, with the observation count (every access) and
/// tracker memory that make it the paper's overhead strawman.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullInstrumentation {
    /// Histogram binning.
    pub binning: Binning,
    /// Measurement granularity.
    pub granularity: Granularity,
}

impl FullInstrumentation {
    /// Creates the baseline with default binning/granularity.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Measures a stream exhaustively.
    #[must_use]
    pub fn profile(&self, stream: impl AccessStream) -> BaselineProfile {
        let exact = ExactProfile::measure(stream, self.granularity, self.binning);
        BaselineProfile {
            rd: exact.rd,
            accesses: exact.accesses,
            observed_accesses: exact.accesses,
            tool_bytes: exact.tracker_bytes as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_trace::Trace;

    #[test]
    fn exact_histogram_and_full_observation() {
        let trace = Trace::from_addresses("t", (0..10_000u64).map(|i| (i % 100) * 8));
        let p = FullInstrumentation::new().profile(trace.stream());
        assert_eq!(p.accesses, 10_000);
        assert_eq!(p.observed_accesses, 10_000);
        assert_eq!(p.rd.total_weight(), 10_000.0);
        assert!(p.tool_bytes > 0);
    }

    #[test]
    fn slowdown_is_orders_of_magnitude() {
        let trace = Trace::from_addresses("t", (0..1000u64).map(|i| i * 8));
        let p = FullInstrumentation::new().profile(trace.stream());
        let slow = p.slowdown(3.0, 250.0);
        assert!(slow > 50.0, "{slow}");
    }

    #[test]
    fn empty_stream() {
        let p = FullInstrumentation::new().profile(Trace::new("e").stream());
        assert_eq!(p.slowdown(3.0, 250.0), 1.0);
        assert!(p.rd.as_histogram().is_empty());
    }
}
