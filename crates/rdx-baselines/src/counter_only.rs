//! PMU-sampling-only baseline (no debug registers).

use crate::BaselineProfile;
use rdx_groundtruth::FxHashMap;
use rdx_histogram::{Binning, RdHistogram, ReuseDistance};
use rdx_trace::{AccessStream, Granularity};

/// Counter-only profiling: PMU address samples without watchpoints.
///
/// Without a trap on the *next* access, the only way to see a reuse is for
/// the **same block to be sampled twice** — the gap between two samples of
/// a block spans one or more true reuse intervals, so reuse times are
/// overestimated (often by multiples), and only blocks hot enough to be
/// sampled twice contribute at all. This is the tool you can build from
/// PEBS/IBS alone, and its failure modes are precisely the paper's
/// motivation for adding debug registers.
#[derive(Debug, Clone, Copy)]
pub struct CounterOnly {
    /// Sampling period in accesses.
    pub period: u64,
    /// Histogram binning.
    pub binning: Binning,
    /// Measurement granularity.
    pub granularity: Granularity,
}

impl CounterOnly {
    /// Creates the baseline with the given sampling period.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn new(period: u64) -> Self {
        assert!(period > 0, "sampling period must be non-zero");
        CounterOnly {
            period,
            binning: Binning::default(),
            granularity: Granularity::default(),
        }
    }

    /// Profiles a stream from samples alone.
    #[must_use]
    pub fn profile(&self, mut stream: impl AccessStream) -> BaselineProfile {
        let mut last_sample: FxHashMap<u64, u64> = FxHashMap::default();
        let mut rd = RdHistogram::new(self.binning);
        let mut accesses = 0u64;
        let mut samples = 0u64;
        let mut pairs = 0u64;
        while let Some(a) = stream.next_access() {
            accesses += 1;
            if !accesses.is_multiple_of(self.period) {
                continue;
            }
            samples += 1;
            let block = a.addr.block(self.granularity);
            if let Some(prev) = last_sample.insert(block, accesses) {
                // gap between the two samples, minus the endpoints
                rd.record(ReuseDistance::finite(accesses - prev - 1), 1.0);
                pairs += 1;
            }
        }
        // Scale to the full run: blocks sampled once are cold *candidates*.
        let singles = samples - pairs;
        if singles > 0 {
            rd.record(ReuseDistance::INFINITE, singles as f64);
        }
        if samples > 0 {
            rd.as_histogram_mut()
                .scale(accesses as f64 / samples as f64);
        }
        let tool_bytes = (std::mem::size_of::<Self>() + last_sample.capacity() * 48) as u64;
        BaselineProfile {
            rd,
            accesses,
            observed_accesses: samples,
            tool_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_trace::Trace;

    #[test]
    fn hot_block_pairs_found() {
        // one block only: every sample hits it → pairs = samples − 1
        let trace = Trace::from_addresses("hot", std::iter::repeat_n(0x40u64, 10_000));
        let p = CounterOnly::new(100).profile(trace.stream());
        assert_eq!(p.observed_accesses, 100);
        // inter-sample gap is 100 accesses → recorded distance 99: a gross
        // overestimate of the true distance 0 — the baseline's failure mode
        assert!(p.rd.as_histogram().weight_for(99) > 0.0);
        assert_eq!(p.rd.as_histogram().weight_for(0), 0.0);
    }

    #[test]
    fn cold_stream_yields_no_pairs() {
        let trace = Trace::from_addresses("cold", (0..100_000u64).map(|i| i * 8));
        let p = CounterOnly::new(100).profile(trace.stream());
        assert_eq!(p.rd.as_histogram().finite_weight(), 0.0);
        assert!(p.rd.cold_weight() > 0.0);
    }

    #[test]
    fn featherlight_observation_count() {
        let trace = Trace::from_addresses("t", (0..100_000u64).map(|i| (i % 64) * 8));
        let p = CounterOnly::new(1000).profile(trace.stream());
        assert_eq!(p.observed_accesses, 100);
        assert!(p.slowdown(3.0, 250.0) < 1.1);
    }

    #[test]
    fn total_weight_scales_to_n() {
        let trace = Trace::from_addresses("t", (0..50_000u64).map(|i| (i % 16) * 8));
        let p = CounterOnly::new(500).profile(trace.stream());
        assert!((p.rd.total_weight() - 50_000.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_rejected() {
        let _ = CounterOnly::new(0);
    }
}
