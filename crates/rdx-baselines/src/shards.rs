//! SHARDS-style spatially hashed sampling.

use crate::BaselineProfile;
use rdx_groundtruth::OlkenTracker;
use rdx_histogram::{Binning, RdHistogram, ReuseDistance};
use rdx_trace::{AccessStream, Granularity};

/// SHARDS (Waldspurger et al., FAST'15) adapted to reuse-distance
/// histograms: monitor only blocks whose address hash falls below a
/// threshold (rate `R`), run exact Olken on the monitored subset, and
/// scale both distances and weights by `1/R`.
///
/// The crucial contrast with RDX: SHARDS still *observes every access*
/// (the hash filter runs inline), so its time overhead remains
/// instrumentation-class even though its memory shrinks by `R`.
#[derive(Debug, Clone, Copy)]
pub struct Shards {
    /// Sampling rate `R` in `(0, 1]`; `R = 1` degenerates to full Olken.
    pub rate: f64,
    /// Histogram binning.
    pub binning: Binning,
    /// Measurement granularity.
    pub granularity: Granularity,
}

impl Shards {
    /// Creates a SHARDS baseline with the given sampling rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `(0, 1]`.
    #[must_use]
    pub fn new(rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate <= 1.0,
            "SHARDS rate must lie in (0, 1], got {rate}"
        );
        Shards {
            rate,
            binning: Binning::default(),
            granularity: Granularity::default(),
        }
    }

    fn monitored(&self, block: u64) -> bool {
        // splitmix64 finalizer as the spatial hash
        let mut z = block.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z as f64) < self.rate * (u64::MAX as f64)
    }

    /// Profiles a stream with spatial sampling.
    #[must_use]
    pub fn profile(&self, mut stream: impl AccessStream) -> BaselineProfile {
        let mut olken = OlkenTracker::new();
        let mut rd = RdHistogram::new(self.binning);
        let inv = 1.0 / self.rate;
        let mut accesses = 0u64;
        while let Some(a) = stream.next_access() {
            accesses += 1;
            let block = a.addr.block(self.granularity);
            if !self.monitored(block) {
                continue;
            }
            match olken.access(block).value() {
                None => rd.record(ReuseDistance::INFINITE, inv),
                Some(d_sub) => {
                    let d = (d_sub as f64 * inv).round() as u64;
                    rd.record(ReuseDistance::finite(d), inv);
                }
            }
        }
        let tool_bytes = olken.memory_bytes() as u64;
        BaselineProfile {
            rd,
            accesses,
            // the hash filter runs on every access
            observed_accesses: accesses,
            tool_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_groundtruth::ExactProfile;
    use rdx_histogram::accuracy::histogram_intersection;
    use rdx_trace::Trace;

    fn pseudorandom_trace(n: u64, blocks: u64) -> Trace {
        let mut x = 99u64;
        Trace::from_addresses(
            "r",
            (0..n).map(move |_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((x >> 33) % blocks) * 8
            }),
        )
    }

    #[test]
    fn full_rate_matches_exact() {
        let trace = pseudorandom_trace(20_000, 500);
        let shards = Shards::new(1.0).profile(trace.stream());
        let exact =
            ExactProfile::measure(trace.stream(), Granularity::default(), Binning::default());
        let acc =
            histogram_intersection(shards.rd.as_histogram(), exact.rd.as_histogram()).unwrap();
        assert!(acc > 0.999, "R=1 must reproduce exact: {acc}");
    }

    #[test]
    fn sampled_rate_close_to_exact() {
        let trace = pseudorandom_trace(200_000, 2000);
        let shards = Shards::new(0.05).profile(trace.stream());
        let exact =
            ExactProfile::measure(trace.stream(), Granularity::default(), Binning::default());
        let acc =
            histogram_intersection(shards.rd.as_histogram(), exact.rd.as_histogram()).unwrap();
        assert!(acc > 0.8, "SHARDS at 5% should stay accurate: {acc}");
        // total weight scales back to ≈ n
        let total = shards.rd.total_weight();
        assert!((total - 200_000.0).abs() < 0.2 * 200_000.0, "{total}");
    }

    #[test]
    fn memory_shrinks_with_rate() {
        let trace = pseudorandom_trace(100_000, 20_000);
        let full = Shards::new(1.0).profile(trace.stream());
        let sampled = Shards::new(0.02).profile(trace.stream());
        assert!(sampled.tool_bytes * 4 < full.tool_bytes);
    }

    #[test]
    fn still_observes_every_access() {
        let trace = pseudorandom_trace(10_000, 100);
        let p = Shards::new(0.01).profile(trace.stream());
        assert_eq!(p.observed_accesses, 10_000);
        assert!(p.slowdown(3.0, 250.0) > 50.0);
    }

    #[test]
    #[should_panic(expected = "(0, 1]")]
    fn zero_rate_rejected() {
        let _ = Shards::new(0.0);
    }
}
