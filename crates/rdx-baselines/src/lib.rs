//! Baseline reuse-distance estimators RDX is compared against.
//!
//! Three comparators, spanning the design space the paper positions RDX in:
//!
//! * [`FullInstrumentation`] — the exhaustive tool (Olken over every
//!   access), re-exported measurement from `rdx-groundtruth` plus the cost
//!   accounting that makes it the "orders of magnitude slowdown" strawman.
//! * [`Shards`] — SHARDS-style *spatial* hash sampling (Waldspurger et
//!   al.): monitor the fixed subset of blocks whose hash falls under a
//!   threshold, run exact Olken on that subset, scale distances by the
//!   sampling rate. Still requires observing **every** access (it is an
//!   instrumentation-time optimization, not an instrumentation remover),
//!   which is exactly the contrast RDX draws.
//! * [`CounterOnly`] — PMU sampling without debug registers: reuse *time*
//!   is approximated from repeated samples of the same block; distances are
//!   reported as times (no trap ⇒ no exact interval, no footprint anchor).
//!   Shows why the debug-register half of RDX matters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter_only;
mod full;
mod shards;

pub use counter_only::CounterOnly;
pub use full::FullInstrumentation;
pub use shards::Shards;

use rdx_histogram::RdHistogram;

/// Common result shape for all baselines, comparable to both ground truth
/// and RDX profiles.
#[derive(Debug, Clone)]
pub struct BaselineProfile {
    /// Estimated (or exact) reuse-distance histogram, scaled so total
    /// weight equals the access count.
    pub rd: RdHistogram,
    /// Accesses consumed.
    pub accesses: u64,
    /// Number of accesses the tool had to *observe* (instrumentation
    /// work); `accesses` for instrumentation tools, ~`samples` for
    /// sampling tools. Drives the slowdown comparison.
    pub observed_accesses: u64,
    /// Approximate tool memory in bytes.
    pub tool_bytes: u64,
}

impl BaselineProfile {
    /// Slowdown factor implied by the observation count, with
    /// per-observed-access callback cost `callback_cycles` over a base of
    /// `base_cycles` per access.
    #[must_use]
    pub fn slowdown(&self, base_cycles: f64, callback_cycles: f64) -> f64 {
        if self.accesses == 0 {
            return 1.0;
        }
        let base = self.accesses as f64 * base_cycles;
        (base + self.observed_accesses as f64 * callback_cycles) / base
    }
}
