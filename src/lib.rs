//! RDX — featherlight reuse-distance measurement (HPCA 2019 reproduction).
//!
//! This meta-crate re-exports the whole workspace behind one dependency:
//!
//! * [`core`] — the RDX profiler (PMU sampling + debug registers).
//! * [`machine`] — the simulated hardware substrate.
//! * [`traces`] — access traces, streams, I/O, statistics.
//! * [`workloads`] — the deterministic SPEC-CPU2017-like kernel suite.
//! * [`groundtruth`] — exhaustive (Olken) measurement and exact footprints.
//! * [`baselines`] — exhaustive, SHARDS-style and counter-only comparators.
//! * [`histogram`] — histograms, accuracy metrics, miss-ratio curves.
//! * [`cache`] — cache presets, a set-associative simulator, predictions.
//! * [`metrics`] — zero-cost-when-disabled observability probes; turn
//!   them into real collectors with the `metrics` cargo feature.
//!
//! # Quickstart
//!
//! ```
//! use rdx::core::{RdxConfig, RdxRunner};
//! use rdx::workloads::{by_name, Params};
//!
//! let workload = by_name("zipf").expect("in the suite");
//! let params = Params::default().with_accesses(200_000);
//! let profile = RdxRunner::new(RdxConfig::default().with_period(512))
//!     .profile(workload.stream(&params));
//! println!("estimated distinct blocks: {:.0}", profile.m_estimate);
//! assert!(profile.samples > 300);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use memsim as machine;
pub use rdx_baselines as baselines;
pub use rdx_cache as cache;
pub use rdx_core as core;
pub use rdx_groundtruth as groundtruth;
pub use rdx_histogram as histogram;
pub use rdx_metrics as metrics;
pub use rdx_trace as traces;
pub use rdx_workloads as workloads;
