//! Vendored, dependency-free property-testing shim with the `proptest`
//! macro surface this workspace uses.
//!
//! Differences from the real crate, by design (offline build):
//!
//! * **No shrinking.** On failure the *original* generated inputs are
//!   printed (via `Debug`) before the panic is re-raised, so failures
//!   are still reproducible — generation is deterministic per test name
//!   (re-running the same binary regenerates the same cases).
//! * **Deterministic seeding.** Each `proptest!` test derives its RNG
//!   seed from the test's name, so runs are reproducible by default.
//!   `.proptest-regressions` files are not consumed; known regressions
//!   are pinned as explicit `#[test]` functions instead.
//! * Case count defaults to 256 and honors the `PROPTEST_CASES`
//!   environment variable, like the real crate.
//!
//! Supported strategy surface: integer/float ranges, `any::<T>()`,
//! `Just`, 2-/3-tuples, `prop::collection::vec`, `prop_oneof!`
//! (weighted and unweighted), and `.prop_map`.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::marker::PhantomData;
use std::ops::Range;

pub mod collection;

/// Runtime configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Applies the `PROPTEST_CASES` env override to a configured count.
#[must_use]
pub fn resolve_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.parse().unwrap_or(configured).max(1),
        Err(_) => configured.max(1),
    }
}

/// The deterministic source of randomness handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: SmallRng,
}

impl TestRng {
    /// Builds the RNG for a named test (FNV-1a of the name as seed), so
    /// every run of that test generates the identical case sequence.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            rng: SmallRng::seed_from_u64(h),
        }
    }

    fn small(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// A generator of values for one `proptest!` argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a full-domain "arbitrary" strategy via [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.small().random::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.small().random()
    }
}

/// Strategy marker returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Full-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.small().random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Weighted union of strategies; built by [`prop_oneof!`].
pub struct OneOf<V> {
    arms: Vec<(u32, Box<dyn Fn(&mut TestRng) -> V>)>,
    total_weight: u64,
}

impl<V> OneOf<V> {
    /// Builds a union from `(weight, generator)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    #[must_use]
    pub fn new(arms: Vec<(u32, Box<dyn Fn(&mut TestRng) -> V>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs a positive total weight"
        );
        OneOf { arms, total_weight }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.small().random_range(0..self.total_weight);
        for (w, arm) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return arm(rng);
            }
            pick -= w;
        }
        unreachable!("weight bookkeeping is exhaustive")
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @config ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @config ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config ($config:expr)) => {};
    (@config ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let cases = $crate::resolve_cases(config.cases);
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for case in 0..cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $(let $arg = ::std::clone::Clone::clone(&$arg);)+
                    $body
                }));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest {}: failed on case {} of {}; inputs:",
                        stringify!($name),
                        case + 1,
                        cases
                    );
                    $(eprintln!("    {} = {:?}", stringify!($arg), $arg);)+
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_impl! { @config ($config) $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Weighted (`w => strat`) or uniform union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((
                $weight as u32,
                {
                    let s = $strat;
                    Box::new(move |rng: &mut $crate::TestRng| $crate::Strategy::generate(&s, rng))
                        as Box<dyn Fn(&mut $crate::TestRng) -> _>
                },
            )),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof!($(1 => $strat),+)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(10u64..20), &mut rng);
            assert!((10..20).contains(&v));
            let f = Strategy::generate(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::for_test("sizes");
        for _ in 0..200 {
            let v = Strategy::generate(&prop::collection::vec(0u64..5, 3..7), &mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 5));
        }
    }

    #[test]
    fn oneof_honors_weights_roughly() {
        let strat = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut rng = TestRng::for_test("weights");
        let hits = (0..1000)
            .filter(|_| Strategy::generate(&strat, &mut rng))
            .count();
        assert!(hits > 800 && hits < 980, "{hits}");
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let gen = |name: &str| {
            let mut rng = TestRng::for_test(name);
            Strategy::generate(&prop::collection::vec(any::<u64>(), 5..6), &mut rng)
        };
        assert_eq!(gen("a"), gen("a"));
        assert_ne!(gen("a"), gen("b"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_smoke(x in 0u64..100, pair in (0u32..4, any::<bool>())) {
            prop_assert!(x < 100);
            prop_assert!(pair.0 < 4);
            let _ = pair.1;
        }
    }
}
