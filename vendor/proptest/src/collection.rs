//! Collection strategies (`prop::collection::vec`).

use crate::{Strategy, TestRng};
use rand::RngExt;
use std::ops::Range;

/// Strategy yielding `Vec`s with lengths drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// `Vec` strategy: each element from `element`, length uniform in
/// `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range for vec strategy");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.small().random_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
