//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic generator: xoshiro256++.
///
/// Matches the role (and rough statistical quality) of `rand`'s
/// `SmallRng`. State is 256 bits; period 2^256 − 1.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // An all-zero state is the one fixed point; nudge it out.
        if s == [0; 4] {
            let mut sm = 0xDEAD_BEEF_CAFE_F00D;
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
        }
        SmallRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut sm);
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
