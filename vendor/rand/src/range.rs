//! Uniform range sampling (Lemire widening multiply with rejection).

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// A range that can produce a uniform sample. Mirrors
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` for `span >= 1`, unbiased.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Lemire's method: m = x * span is uniform over [0, 2^64 * span);
    // the high word is the sample, the low word detects the biased zone.
    let mut x = rng.next_u64();
    let mut m = u128::from(x) * u128::from(span);
    let mut lo = m as u64;
    if lo < span {
        // threshold = 2^64 mod span
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            x = rng.next_u64();
            m = u128::from(x) * u128::from(span);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Uniform over an inclusive span `[0, span_minus_one]` where the span
/// may cover the whole `u64` domain.
fn uniform_inclusive<R: RngCore + ?Sized>(rng: &mut R, span_minus_one: u64) -> u64 {
    if span_minus_one == u64::MAX {
        rng.next_u64()
    } else {
        uniform_below(rng, span_minus_one + 1)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span_minus_one = (end as u64).wrapping_sub(start as u64);
                start.wrapping_add(uniform_inclusive(rng, span_minus_one) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_signed_range!(i32 => u32, i64 => u64);

impl SampleRange<f64> for Range<f64> {
    fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}
