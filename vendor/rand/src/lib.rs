//! Vendored, dependency-free subset of the `rand` crate API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace pins `rand` to this local implementation. Only the surface
//! actually used by the workspace is provided: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], and the [`RngExt`] extension trait
//! (`random`, `random_range`).
//!
//! `SmallRng` is xoshiro256++ (the same family the real `rand` uses for
//! its small RNG), seeded through SplitMix64. Range sampling uses
//! Lemire's widening-multiply method with rejection, so it is unbiased;
//! `random::<f64>()` uses the standard 53-bit mantissa conversion. The
//! workspace's statistical tests (normal moments, Zipf skew, jittered
//! PMU periods) run against this generator.

#![forbid(unsafe_code)]

pub mod rngs;

mod range;
pub use range::SampleRange;

/// Minimal core RNG interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        // Upper bits of xoshiro output have the best equidistribution.
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled from an RNG's "standard" distribution:
/// uniform over all values for integers/bool, uniform in `[0, 1)` for
/// floats. Mirrors `rand`'s `StandardUniform` distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Construction of reproducible RNGs from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a 64-bit state, expanding it with SplitMix64
    /// (so nearby seeds still yield uncorrelated streams).
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods for ergonomic sampling, mirroring `rand::Rng`.
pub trait RngExt: RngCore {
    /// Samples a value from the standard distribution (uniform bits for
    /// integers, `[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`. Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_uniform(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = SmallRng::seed_from_u64(0);
        let mut b = SmallRng::seed_from_u64(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_is_unbiased_over_small_span() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.random_range(0..3usize)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1_000 {
            match rng.random_range(5u64..=8) {
                5 => lo = true,
                8 => hi = true,
                6 | 7 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn full_u64_inclusive_range_works() {
        let mut rng = SmallRng::seed_from_u64(13);
        // span of u64::MAX + 1 must not panic or bias.
        let _ = rng.random_range(0u64..=u64::MAX);
    }
}
