//! Scoped threads with crossbeam's `scope(|s| ...) -> Result<R>` shape,
//! implemented over `std::thread::scope`.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The payload of a panicked scoped thread.
pub type Payload = Box<dyn Any + Send + 'static>;

/// `Ok(r)` if every spawned thread completed, `Err(payload)` if any
/// panicked (the first payload std happened to propagate).
pub type Result<T> = std::result::Result<T, Payload>;

/// Handle to a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish, returning its value or its panic
    /// payload.
    pub fn join(self) -> Result<T> {
        self.inner.join()
    }
}

/// A scope in which threads borrowing local data can be spawned.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. As in crossbeam, the closure receives the
    /// scope again so it can spawn nested threads.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let nested = Scope { inner: self.inner };
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&nested)),
        }
    }
}

/// Runs `f` with a [`Scope`]; joins all spawned threads before
/// returning. A panic in any spawned thread is reported as `Err` rather
/// than unwinding through the caller.
pub fn scope<'env, F, R>(f: F) -> Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    // std::thread::scope itself panics (after joining everything) when a
    // spawned thread panicked; catch that to match crossbeam's contract.
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| {
            let wrapper = Scope { inner: s };
            f(&wrapper)
        })
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let counter = AtomicU32::new(0);
        let r = scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            7u32
        })
        .unwrap();
        assert_eq!(r, 7);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn join_returns_thread_value() {
        let r = scope(|s| {
            let h = s.spawn(|_| 41u64 + 1);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }

    #[test]
    fn child_panic_is_err_not_unwind() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let r = scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 5u8).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(r, 5);
    }
}
