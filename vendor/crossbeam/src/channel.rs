//! Channels with crossbeam's constructor names, over `std::sync::mpsc`.

use std::sync::mpsc;

pub use mpsc::{RecvError, SendError, TryRecvError};

/// Sending half of a channel (clonable: multiple producers).
pub struct Sender<T> {
    inner: SenderKind<T>,
}

enum SenderKind<T> {
    Bounded(mpsc::SyncSender<T>),
    Unbounded(mpsc::Sender<T>),
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        let inner = match &self.inner {
            SenderKind::Bounded(s) => SenderKind::Bounded(s.clone()),
            SenderKind::Unbounded(s) => SenderKind::Unbounded(s.clone()),
        };
        Sender { inner }
    }
}

impl<T> Sender<T> {
    /// Sends a value, blocking while a bounded channel is full.
    ///
    /// # Errors
    ///
    /// Returns the value back if the receiving side has disconnected.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        match &self.inner {
            SenderKind::Bounded(s) => s.send(value),
            SenderKind::Unbounded(s) => s.send(value),
        }
    }
}

/// Receiving half of a channel.
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
}

impl<T> Receiver<T> {
    /// Blocks for the next value.
    ///
    /// # Errors
    ///
    /// Fails once the channel is empty and all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv()
    }

    /// Non-blocking receive.
    ///
    /// # Errors
    ///
    /// Fails if the channel is currently empty or disconnected.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.inner.try_recv()
    }

    /// Iterates until the channel closes.
    pub fn iter(&self) -> mpsc::Iter<'_, T> {
        self.inner.iter()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = mpsc::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = mpsc::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Creates a channel holding at most `cap` in-flight values.
#[must_use]
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    (
        Sender {
            inner: SenderKind::Bounded(tx),
        },
        Receiver { inner: rx },
    )
}

/// Creates a channel with unlimited buffering.
#[must_use]
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (
        Sender {
            inner: SenderKind::Unbounded(tx),
        },
        Receiver { inner: rx },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_roundtrip_in_order() {
        let (tx, rx) = bounded(2);
        std::thread::spawn(move || {
            for i in 0..10u32 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn unbounded_multi_producer() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1u8).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        let mut got: Vec<u8> = rx.into_iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }
}
