//! Vendored `crossbeam` facade built on `std`.
//!
//! Provides `crossbeam::scope` (scoped spawn whose closure receives a
//! `&Scope`, and whose panics surface as `Err` from `scope` rather than
//! unwinding through the caller) and `crossbeam::channel`
//! (`bounded`/`unbounded` MPSC wrappers over `std::sync::mpsc`). The
//! differences from the real crate — channels here are MPSC rather than
//! MPMC, and `Receiver` is not `Clone` — don't matter to this
//! workspace, which fans work out via one consumer per channel.

pub mod channel;
pub mod thread;

pub use thread::{scope, Scope, ScopedJoinHandle};
