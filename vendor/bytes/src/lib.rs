//! Vendored, dependency-free subset of the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`] and the [`Buf`]/[`BufMut`] traits
//! with the exact surface the workspace's trace codec uses. Unlike the
//! real crate this implementation is plain `Vec<u8>` + cursor (no
//! refcounted zero-copy slicing); semantics visible to callers —
//! little-endian getters/putters, cursor advancement, `slice`,
//! `freeze` — match the real API.

#![forbid(unsafe_code)]

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Read access to a byte cursor. Subset of `bytes::Buf`.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consumes `cnt` bytes. Panics if fewer remain.
    fn advance(&mut self, cnt: usize);

    /// Borrows the unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// True while any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte, advancing the cursor.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u32`, advancing the cursor.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`, advancing the cursor.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Consumes `len` bytes and returns them as an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::from(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

/// Write access to a growable byte buffer. Subset of `bytes::BufMut`.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An immutable byte buffer with a consuming cursor.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Length of the (unconsumed) view.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the view into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a sub-view of the current view (cheap; shares storage).
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes::from(&v[..])
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Current length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when no bytes have been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_cursor() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u32_le(0xAABB_CCDD);
        b.put_u64_le(u64::MAX - 1);
        b.put_slice(b"xy");
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 15);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xAABB_CCDD);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(&r.copy_to_bytes(2)[..], b"xy");
        assert!(!r.has_remaining());
    }

    #[test]
    fn slice_is_relative_to_view() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = b.slice(..4);
        assert_eq!(&s[..], &[0, 1, 2, 3]);
        let inner = s.slice(1..3);
        assert_eq!(&inner[..], &[1, 2]);
        assert_eq!(b.to_vec().len(), 6);
    }
}
