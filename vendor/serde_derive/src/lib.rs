//! No-op derive macros backing the offline `serde` facade.
//!
//! The workspace derives `Serialize`/`Deserialize` for documentation
//! value but never serializes, so the derives expand to nothing. No
//! trait impls are emitted; nothing in the workspace requires the
//! bounds.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
