//! Vendored, dependency-free facade for `serde`.
//!
//! The workspace annotates config/snapshot types with
//! `#[derive(Serialize, Deserialize)]` but never actually serializes
//! anything (there is no `serde_json` or other format crate in the
//! dependency graph). Since the build environment is offline, this stub
//! provides just enough for those derives to compile: the two trait
//! names and derive macros that expand to nothing.
//!
//! If a future PR adds real serialization, this facade must be replaced
//! by the real `serde` (or the traits here must grow real methods).

#![forbid(unsafe_code)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
