//! Vendored `criterion` facade: same macro/builder surface, minimal
//! harness.
//!
//! Each benchmark runs a short warm-up followed by a handful of timed
//! iterations and prints the best observed time (plus throughput when
//! configured). No statistics, plots, or baselines — just enough to run
//! `cargo bench` offline and eyeball hot-path regressions.

#![forbid(unsafe_code)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Measurement loop handle passed to benchmark closures.
pub struct Bencher {
    best: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f`, keeping the best of a few batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up, untimed
        const BATCHES: u32 = 5;
        for _ in 0..BATCHES {
            let start = Instant::now();
            std::hint::black_box(f());
            let elapsed = start.elapsed();
            if elapsed < self.best {
                self.best = elapsed;
            }
            self.iters += 1;
        }
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Two-part benchmark identifier (`function/input`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

fn run_one(label: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        best: Duration::MAX,
        iters: 0,
    };
    f(&mut b);
    let best = if b.iters == 0 { Duration::ZERO } else { b.best };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if best > Duration::ZERO => {
            format!("  ({:.1} Melem/s)", n as f64 / best.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if best > Duration::ZERO => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / best.as_secs_f64() / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("bench {label:<50} {best:>12.3?}{rate}");
}

/// Benchmark registry/driver with criterion's builder API.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), self.throughput, &mut f);
        self
    }

    /// Runs a parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{id}", self.name), self.throughput, &mut |b| {
            f(b, input);
        });
        self
    }

    /// Finishes the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_functions_run() {
        let mut c = Criterion::default();
        let mut hits = 0u32;
        c.bench_function("smoke", |b| b.iter(|| hits += 1));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, x| {
            b.iter(|| std::hint::black_box(*x * 2))
        });
        group.finish();
        assert!(hits >= 1);
    }
}
