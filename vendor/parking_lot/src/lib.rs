//! Vendored `parking_lot` facade backed by `std::sync`.
//!
//! Offers the non-poisoning `lock()` API the workspace uses. Poisoned
//! std locks are transparently recovered (parking_lot has no poisoning,
//! so this matches its semantics).

#![forbid(unsafe_code)]

use std::sync;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A mutex with parking_lot's panic-transparent locking API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A reader-writer lock with parking_lot's panic-transparent API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }
}
