//! Tool shootout: RDX vs exhaustive instrumentation vs SHARDS vs
//! counter-only sampling on one workload — accuracy and cost side by side,
//! reproducing the paper's positioning argument in a single screen.
//!
//! ```text
//! cargo run --release --example tool_shootout [workload]
//! ```

use rdx::baselines::{CounterOnly, FullInstrumentation, Shards};
use rdx::core::{RdxConfig, RdxRunner};
use rdx::groundtruth::ExactProfile;
use rdx::histogram::accuracy::histogram_intersection;
use rdx::histogram::Binning;
use rdx::traces::Granularity;
use rdx::workloads::{by_name, Params};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "hash_probe".into());
    let Some(workload) = by_name(&name) else {
        eprintln!("unknown workload '{name}'");
        std::process::exit(1);
    };
    let params = Params::default().with_accesses(4_000_000);
    let (base_cycles, callback_cycles) = (3.0, 250.0);

    let truth = ExactProfile::measure(workload.stream(&params), Granularity::WORD, Binning::log2());
    let acc = |h: &rdx::histogram::Histogram| {
        histogram_intersection(h, truth.rd.as_histogram()).expect("same binning") * 100.0
    };

    println!(
        "workload: {} ({} accesses)\n",
        workload.name, params.accesses
    );
    println!(
        "{:22} {:>10} {:>12} {:>12}",
        "tool", "accuracy", "slowdown", "tool memory"
    );

    let rdx_profile =
        RdxRunner::new(RdxConfig::default().with_period(2048)).profile(workload.stream(&params));
    println!(
        "{:22} {:>9.1}% {:>11.2}x {:>12}",
        "rdx (this paper)",
        acc(rdx_profile.rd.as_histogram()),
        1.0 + rdx_profile.time_overhead,
        kib(rdx_profile.profiler_bytes)
    );

    let mut full_tool = FullInstrumentation::new();
    full_tool.granularity = Granularity::WORD;
    let full = full_tool.profile(workload.stream(&params));
    println!(
        "{:22} {:>9.1}% {:>11.2}x {:>12}",
        "full instrumentation",
        acc(full.rd.as_histogram()),
        full.slowdown(base_cycles, callback_cycles),
        kib(full.tool_bytes)
    );

    let mut shards_tool = Shards::new(0.01);
    shards_tool.granularity = Granularity::WORD;
    let shards = shards_tool.profile(workload.stream(&params));
    println!(
        "{:22} {:>9.1}% {:>11.2}x {:>12}",
        "shards (1% spatial)",
        acc(shards.rd.as_histogram()),
        shards.slowdown(base_cycles, callback_cycles),
        kib(shards.tool_bytes)
    );

    let mut counter_tool = CounterOnly::new(2048);
    counter_tool.granularity = Granularity::WORD;
    let counter = counter_tool.profile(workload.stream(&params));
    println!(
        "{:22} {:>9.1}% {:>11.2}x {:>12}",
        "counter-only",
        acc(counter.rd.as_histogram()),
        counter.slowdown(base_cycles, callback_cycles),
        kib(counter.tool_bytes)
    );

    println!("\nRDX's corner: accuracy close to instrumentation at sampling cost.");
}

fn kib(b: u64) -> String {
    format!("{:.0} KiB", b as f64 / 1024.0)
}
