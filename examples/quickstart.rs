//! Quickstart: profile a workload's reuse distances with RDX and inspect
//! the result — the 30-second tour of the library.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rdx::core::{RdxConfig, RdxRunner};
use rdx::workloads::{by_name, Params};

fn main() {
    // 1. Pick a workload (or bring your own `AccessStream`).
    let workload = by_name("zipf").expect("part of the bundled suite");
    let params = Params::default().with_accesses(4_000_000);

    // 2. Configure the profiler. The defaults are the paper's operating
    //    point (4 debug registers, footprint conversion, IPCW censoring
    //    correction); we sample densely here because the demo run is short.
    let config = RdxConfig::default().with_period(2048);

    // 3. Profile. No instrumentation happens: the simulated machine
    //    delivers PMU samples and debug-register traps, exactly like the
    //    kernel would on real hardware.
    let profile = RdxRunner::new(config).profile(workload.stream(&params));

    println!(
        "workload          : {} ({})",
        workload.name, workload.spec_analog
    );
    println!("accesses          : {}", profile.accesses);
    println!(
        "samples / traps   : {} / {}",
        profile.samples, profile.traps
    );
    println!("est. distinct     : {:.0} blocks", profile.m_estimate);
    println!(
        "time overhead     : {:.2}% (demo samples 32x denser than production;\n                    at the paper's 64Ki period this is ≈5% — see exp_fig_time_overhead)",
        profile.time_overhead * 100.0
    );
    println!(
        "vs instrumentation: {:.0}x slowdown avoided",
        profile.instrumentation_slowdown()
    );

    // 4. The deliverable: a reuse-distance histogram.
    println!("\nreuse-distance histogram:");
    let h = profile.rd.as_histogram().normalized();
    for b in h.buckets() {
        println!(
            "  [{:>8}, {:>8})  {:5.1}%  {}",
            b.range.lo,
            b.range.hi,
            b.weight * 100.0,
            "#".repeat((b.weight * 60.0).round() as usize)
        );
    }
    println!(
        "  {:>20}  {:5.1}%  (cold: first touches)",
        "",
        h.infinite_weight() * 100.0
    );

    // 5. And what it predicts: the LRU miss-ratio curve.
    let mrc = profile.miss_ratio_curve();
    println!("\nmiss ratio at power-of-two cache sizes (in 8B words):");
    for shift in [10u32, 12, 14, 16] {
        let cap = 1u64 << shift;
        println!("  {:>8} words: {:.3}", cap, mrc.miss_ratio(cap));
    }
}
