//! Cache sizing from featherlight profiles — the paper's motivating use
//! case: decide how much cache a workload actually needs *in production*,
//! where instrumentation-based tools are unaffordable.
//!
//! For each workload we take an RDX profile (≈5 % overhead), derive the
//! miss-ratio curve, and report the smallest capacity reaching 110 % of
//! the cold-miss floor — the "knee" past which more cache buys nothing.
//!
//! ```text
//! cargo run --release --example cache_sizing
//! ```

use rdx::cache::{hierarchy, predict};
use rdx::core::{RdxConfig, RdxRunner};
use rdx::workloads::{suite, Params};

fn main() {
    let params = Params::default().with_accesses(4_000_000);
    let runner = RdxRunner::new(RdxConfig::default().with_period(2048));
    let levels = hierarchy();
    println!(
        "{:16} {:>14} {:>10} {:>10} {:>10}",
        "workload", "knee (bytes)", "L1 miss", "L2 miss", "LLC miss"
    );
    for w in suite() {
        let profile = runner.profile(w.stream(&params));
        let mrc = profile.miss_ratio_curve();
        // knee: smallest capacity whose miss ratio is within 10% of floor
        let target = (mrc.floor() * 1.1).max(mrc.floor() + 0.01);
        let knee_words = mrc.capacity_for_miss_ratio(target);
        let knee = knee_words.map_or_else(|| "> footprint".to_string(), |wds| human_bytes(wds * 8));
        let levels_pred = predict::miss_ratios(&profile.rd, &levels, 8);
        println!(
            "{:16} {:>14} {:>9.1}% {:>9.1}% {:>9.1}%",
            w.name,
            knee,
            levels_pred[0].miss_ratio * 100.0,
            levels_pred[1].miss_ratio * 100.0,
            levels_pred[2].miss_ratio * 100.0,
        );
    }
    println!("\nReading the table: workloads whose knee exceeds the LLC (32 MiB)");
    println!("are bandwidth-bound no matter the cache; ones with KiB-scale knees");
    println!("are compute-bound; the middle band is where cache partitioning and");
    println!("locality optimization pay off.");
}

fn human_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}
