//! Continuous locality monitoring of a long-running service — the
//! deployment scenario the paper targets ("long-running, production
//! applications"): profile in epochs at negligible overhead and flag
//! locality regressions as they happen.
//!
//! We synthesize a service whose behaviour degrades mid-run (its hot set
//! blows up, as after a bad deploy or a data-skew shift), profile each
//! epoch independently, and raise an alert when consecutive epochs'
//! reuse-distance histograms diverge.
//!
//! ```text
//! cargo run --release --example production_monitor
//! ```

use rdx::core::{RdxConfig, RdxRunner};
use rdx::histogram::accuracy::total_variation;
use rdx::traces::AccessStream;
use rdx::workloads::{by_name, Params};

const EPOCHS: usize = 8;
const EPOCH_ACCESSES: u64 = 8_000_000;

fn main() {
    // The "service": healthy epochs look like a compact Zipf hot set;
    // from epoch 5 on, the hot set explodes to 10x the size.
    let healthy = by_name("zipf").expect("in suite");
    let degraded = by_name("random_uniform").expect("in suite");

    // Production operating point: the paper's 64Ki period, ≈5% overhead.
    let runner = RdxRunner::new(RdxConfig::default());
    let mut last = None;
    println!(
        "{:>5} {:>9} {:>9} {:>10} {:>12}  status",
        "epoch", "traps", "overhead", "mean RD", "divergence"
    );
    for epoch in 0..EPOCHS {
        let params = Params::default()
            .with_accesses(EPOCH_ACCESSES)
            .with_seed(1000 + epoch as u64);
        let mut stream: Box<dyn AccessStream + Send> = if epoch < 5 {
            healthy.stream(&params)
        } else {
            degraded.stream(&params)
        };
        let profile = runner.profile(&mut stream);
        let mean_rd = profile.rd.as_histogram().finite_mean().unwrap_or(f64::NAN);
        let divergence = match &last {
            None => 0.0,
            Some(prev) => total_variation(profile.rd.as_histogram(), prev).expect("same binning"),
        };
        let status = if divergence > 0.3 {
            "ALERT: locality regression"
        } else {
            "ok"
        };
        println!(
            "{:>5} {:>9} {:>8.2}% {:>10.0} {:>12.3}  {}",
            epoch,
            profile.traps,
            profile.time_overhead * 100.0,
            mean_rd,
            divergence,
            status
        );
        last = Some(profile.rd.as_histogram().clone());
    }
    println!("\nEach epoch ran at the paper's ≈5% overhead — cheap enough to leave");
    println!("on in production, which is the paper's whole point.");
}
